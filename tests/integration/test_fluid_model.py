"""Integration tests for the fluid flow model (ARCHITECTURE.md §7).

Four contract families:

* **fidelity** — fluid FCTs must track the packet oracle on small fabrics
  where both planes can run the identical workload.  Stated tolerances: the
  two planes see the *same flow set* (below the streaming threshold the
  fluid plane uses the eager generator), completion ratios stay ≥ 0.9, and
  the fluid median/p99 FCT stays within a 3×/4× band of the packet one.
  The bands are deliberately loose — the fluid model has no queueing, so
  its tails are structurally different — but tight enough to catch a unit
  mix-up or a broken solver outright.
* **local == global** — the per-epoch locality fast paths (arrival
  certificate, region-local re-solve) must reproduce the full progressive
  filling solve to 1e-9 relative on every summary statistic for
  utilization-independent systems.  (hula/contra may bifurcate on float-ulp
  utilization ties, so they are covered by the invariant harness instead.)
* **max-min invariant** — after *every* epoch, the current group rates must
  equal the global weighted max-min allocation of the current groups.
* **sharding** — fluid grid points shard, resume and merge byte-identically,
  exactly like packet points.
"""

import math

import pytest

from repro.exceptions import ExperimentError
from repro.experiments.config import ExperimentConfig
from repro.experiments.fluid_scale import (
    MILLION_CHURN_PERIOD,
    MILLION_FLOW_TARGET_QUICK,
    fluid_fidelity_specs,
    fluid_million_specs,
    to_fidelity_points,
)
from repro.experiments.registry import _with_flow_model, run_scenario
from repro.experiments.results import (
    ResultsStore,
    ShardedBackend,
    collect_results,
)
from repro.experiments.runner import (
    RunContext,
    ScenarioSpec,
    TopologySpec,
    default_failed_link,
    run_grid,
)
from repro.simulator.fluid import (
    FluidSimulation,
    FluidStats,
    build_path_model,
    max_min_rates,
)
from repro.topology import fattree
from repro.workloads import distribution_by_name, generate_workload

TINY = ExperimentConfig(workload_duration=1.5, run_duration=40.0, loads=(0.4,),
                        websearch_scale=0.05, cache_scale=0.2)


def small_workload(topology, load=0.6, duration=3.0, seed=2):
    return generate_workload(topology, distribution_by_name("web_search", 0.05),
                             load=load, duration=duration,
                             host_capacity=TINY.host_capacity, seed=seed).flows


def churned(simulation, topology):
    a, b = default_failed_link(topology)
    simulation.fail_link(a, b, at_time=1.0)
    simulation.recover_link(a, b, at_time=2.0)
    return simulation


# =============================================================================
# Fidelity oracle: fluid vs packet on fabrics both planes can run
# =============================================================================

class TestFluidVsPacketFidelity:
    @pytest.fixture(scope="class")
    def points(self):
        specs = [s for s in fluid_fidelity_specs(TINY) if s.load == 0.4]
        assert len(specs) == 8  # 2 fabrics x 2 systems x 2 planes
        return to_fidelity_points(run_grid(specs, processes=1))

    def test_both_planes_run_the_identical_flow_set(self, points):
        """Below the streaming threshold the fluid plane uses the same eager
        generator and seed as the packet plane, so the flow sets are equal —
        the comparison is paired, not merely distributionally matched."""
        for point in points:
            assert point.fluid_flows == point.packet_flows > 0

    def test_completion_ratios_stay_high_on_both_planes(self, points):
        for point in points:
            assert point.fluid_p50_ms == point.fluid_p50_ms, point  # not NaN
            assert point.packet_p50_ms == point.packet_p50_ms, point

    def test_fct_within_stated_tolerance_bands(self, points):
        """Stated fidelity tolerance: p50 within 3x, p99 within 4x of the
        packet oracle, both directions, on every (fabric, system) point."""
        assert {(p.fabric, p.system) for p in points} == {
            ("fattree", "ecmp"), ("fattree", "contra"),
            ("abilene", "shortest-path"), ("abilene", "contra")}
        for point in points:
            p50_ratio = point.fluid_p50_ms / point.packet_p50_ms
            p99_ratio = point.fluid_p99_ms / point.packet_p99_ms
            assert 1 / 3 <= p50_ratio <= 3.0, (point, p50_ratio)
            assert 1 / 4 <= p99_ratio <= 4.0, (point, p99_ratio)

    def test_missing_twin_is_an_error(self, points):
        specs = [s for s in fluid_fidelity_specs(TINY) if s.load == 0.4]
        results = run_grid(specs[:1], processes=1)
        with pytest.raises(ExperimentError, match="missing"):
            to_fidelity_points(results)


# =============================================================================
# Local fast paths vs forced global solve
# =============================================================================

class TestLocalGlobalDifferential:
    """The arrival certificate and region-local re-solve are *exactness*
    optimizations: for systems whose path choice cannot depend on
    utilization, the whole run must match a force-global run to 1e-9
    relative on every summary float (epoch counts may differ by the one
    certificate-skipped solve at the boundary)."""

    @pytest.mark.parametrize("system", ["ecmp", "shortest-path", "spain"])
    def test_summaries_match_to_1e9_with_link_events(self, system):
        topology = fattree(4, capacity=TINY.host_capacity)
        flows = small_workload(topology)
        summaries = []
        for force_global in (False, True):
            model = build_path_model(system, topology, policy="datacenter")
            simulation = FluidSimulation(topology, model, stats=FluidStats(),
                                         force_global_solve=force_global)
            simulation.add_flows(flows)
            churned(simulation, topology)
            stats = simulation.run(40.0, stop_after_completion=True)
            summaries.append(stats.summary())
        local, forced = summaries
        assert set(local) == set(forced)
        assert abs(local.pop("epochs") - forced.pop("epochs")) <= 2
        for key, value in local.items():
            assert value == pytest.approx(forced[key], rel=1e-9, abs=1e-12), key


# =============================================================================
# Per-epoch max-min invariant (covers hula/contra too)
# =============================================================================

class InvariantCheckedSimulation(FluidSimulation):
    """Re-verifies the global weighted max-min allocation after every epoch.

    hula/contra can legitimately diverge from a force-global twin run (a
    float-ulp utilization tie picks a different path, bifurcating the
    trajectories), so for them the correctness statement is this invariant:
    whatever groups exist, their rates are the max-min allocation.
    """

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.epochs_verified = 0

    def _resched(self, now):
        super()._resched(now)
        groups = {path: group for path, group in self._groups.items()
                  if group.count}
        if not groups:
            return
        capacity = self.fabric.capacity
        capacities = {link: capacity[link]
                      for path in groups for link in path}
        expected = max_min_rates(
            {path: path for path in groups}, capacities,
            {path: group.count for path, group in groups.items()},
            {path: group.rate_cap for path, group in groups.items()})
        for path, group in groups.items():
            assert math.isclose(group.rate, expected[path],
                                rel_tol=1e-9, abs_tol=1e-9), \
                (path, group.rate, expected[path])
        self.epochs_verified += 1


class TestMaxMinInvariant:
    @pytest.mark.parametrize("system", ["contra", "hula", "ecmp"])
    def test_every_epoch_is_maxmin_under_churn(self, system):
        topology = fattree(4, capacity=TINY.host_capacity)
        model = build_path_model(system, topology, policy="datacenter")
        simulation = InvariantCheckedSimulation(topology, model,
                                                stats=FluidStats())
        simulation.add_flows(small_workload(topology))
        churned(simulation, topology)
        stats = simulation.run(40.0, stop_after_completion=True)
        assert simulation.epochs_verified > 100
        assert stats.summary()["completion_ratio"] > 0.9


# =============================================================================
# Sharding / resume / merge for fluid grids
# =============================================================================

class TestFluidSharding:
    def _specs(self):
        return [s for s in fluid_fidelity_specs(TINY)
                if s.load == 0.4 and "fattree" in s.name]

    def test_shards_union_to_the_serial_run(self, tmp_path):
        specs = self._specs()
        serial = run_grid(specs, processes=1)
        for index in range(2):
            run_grid(specs, backend=ShardedBackend(ResultsStore(tmp_path, index, 2)))
        merged = collect_results(specs, ResultsStore(tmp_path))
        assert merged == serial

    def test_resume_skips_completed_fluid_points(self, tmp_path):
        specs = self._specs()
        first = ShardedBackend(ResultsStore(tmp_path))
        first.run(specs)
        assert first.executed == len(specs)
        second = ShardedBackend(ResultsStore(tmp_path))
        resumed = second.run(specs)
        assert second.executed == 0
        assert resumed == collect_results(specs, ResultsStore(tmp_path))


# =============================================================================
# Dispatch, validation and the --flow-model override
# =============================================================================

class TestFlowModelDispatch:
    def _spec(self, **overrides):
        base = dict(name="fluid-test", system="contra",
                    topology=TopologySpec("fattree", k=4,
                                          capacity=TINY.host_capacity,
                                          oversubscription=TINY.oversubscription),
                    config=TINY, workload="web_search", load=0.4,
                    seed=1, stop_after_completion=True, flow_model="fluid")
        base.update(overrides)
        return ScenarioSpec(**base)

    def test_unknown_flow_model_rejected(self):
        with pytest.raises(ExperimentError, match="unknown flow model"):
            RunContext().run(self._spec(flow_model="quantum"))

    def test_flow_sketch_requires_fluid(self):
        with pytest.raises(ExperimentError, match="flow_sketch requires"):
            RunContext().run(self._spec(flow_model="packet", flow_sketch=True))

    @pytest.mark.parametrize("overrides,match", [
        (dict(system="presto"), "does not support system"),
        (dict(traffic="streams"), "constant-rate"),
        (dict(transport="reliable"), "no fluid-plane equivalent"),
        (dict(cdf_points=(0.5,)), "no fluid-plane equivalent"),
        (dict(collect_throughput=True), "no fluid-plane equivalent"),
        (dict(probe_period=0.5), "no fluid-plane equivalent"),
        (dict(respect_compiled_probe_period=True), "no fluid-plane equivalent"),
        (dict(use_versioning=False), "no fluid-plane equivalent"),
    ])
    def test_packet_only_knobs_fail_loudly_on_the_fluid_plane(self, overrides, match):
        with pytest.raises(ExperimentError, match=match):
            RunContext().run(self._spec(**overrides))

    def test_override_applies_to_a_packet_grid(self):
        specs = [self._spec(flow_model="packet")]
        overridden = _with_flow_model("x", specs, "fluid")
        assert all(s.flow_model == "fluid" for s in overridden)
        assert _with_flow_model("x", specs, None) == specs
        assert _with_flow_model("x", specs, "packet") == specs

    def test_override_rejected_when_the_grid_pins_flow_models(self):
        for scenario in ("fluid-vs-packet", "fluid-million"):
            with pytest.raises(ExperimentError, match="cannot override"):
                run_scenario(scenario, TINY, flow_model="packet")

    def test_override_rejected_for_legacy_scenarios(self):
        with pytest.raises(ExperimentError, match="not a single spec grid"):
            run_scenario("fig9-10", TINY, flow_model="fluid")

    def test_cli_exposes_the_flag(self):
        from repro.cli import build_parser
        parser = build_parser()
        for command in (["run-grid", "fig11"],
                        ["merge-results", "fig11", "--results-dir", "r"],
                        ["gc-results", "fig11", "--results-dir", "r"]):
            args = parser.parse_args(command + ["--flow-model", "fluid"])
            assert args.flow_model == "fluid"
        with pytest.raises(SystemExit):
            parser.parse_args(["run-grid", "fig11", "--flow-model", "hybrid"])


# =============================================================================
# Million-flow family: structural contract (the run itself is a benchmark)
# =============================================================================

class TestFluidMillionSpecs:
    def test_quick_preset_targets_the_quick_flow_count(self):
        specs = fluid_million_specs(TINY)
        assert [s.system for s in specs] == ["ecmp", "contra"]
        for spec in specs:
            assert spec.flow_model == "fluid"
            assert spec.flow_sketch is True
            assert spec.name.endswith(str(MILLION_FLOW_TARGET_QUICK))
            assert spec.topology.k == 8
            assert spec.topology.oversubscription == 1.0
            assert spec.config.host_window == 8

    def test_churn_alternates_and_ends_recovered(self):
        spec = fluid_million_specs(TINY)[0]
        actions = [event.action for event in spec.events]
        assert actions[::2] == ["fail"] * len(actions[::2])
        assert actions[1::2] == ["recover"] * len(actions[1::2])
        assert actions[-1] == "recover"
        times = [event.time for event in spec.events]
        assert times == sorted(times)
        assert times[0] == MILLION_CHURN_PERIOD

    def test_duration_is_sized_from_the_flow_target(self):
        quick, custom = fluid_million_specs(TINY)[0], \
            fluid_million_specs(TINY, systems=("contra",), flow_target=200_000)[0]
        assert custom.config.workload_duration \
            == pytest.approx(2 * quick.config.workload_duration)
