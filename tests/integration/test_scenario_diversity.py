"""Integration tests for the scenario-diversity subsystem.

Covers the LinkEvent schedule contract (multi-failure and fail→recover
sequences through the grid runner, serial == parallel), the incast and
permutation traffic patterns, the new registry scenarios, and the
``_fig9_10`` config-override regression.
"""

import math

import pytest

from repro.exceptions import ExperimentError
from repro.experiments.config import ExperimentConfig
from repro.experiments.failure_recovery import run_multi_failure, run_recovery_sweep
from repro.experiments.registry import SCENARIOS, run_scenario
from repro.experiments.runner import (
    LinkEvent,
    RunContext,
    ScenarioSpec,
    TopologySpec,
    run_grid,
)

TINY = ExperimentConfig(workload_duration=4.0, run_duration=24.0, loads=(0.6,),
                        websearch_scale=0.05)

WAN = TopologySpec("zoo", name="nsfnet", hosts_per_switch=1, capacity=100.0)


def _summaries(results):
    return [(result.name, sorted(result.summary.items())) for result in results]


def wan_spec(**overrides):
    base = dict(name="wan-events", system="contra", topology=WAN, config=TINY,
                policy="wan", workload="cache", load=0.5, seed=1,
                respect_compiled_probe_period=True)
    base.update(overrides)
    return ScenarioSpec(**base)


class TestLinkEventSchedules:
    def test_multi_failure_and_recovery_schedule_runs(self):
        spec = wan_spec(events=(LinkEvent(4.0, "WA", "IL", "fail"),
                                LinkEvent(8.0, "NY", "NJ", "fail"),
                                LinkEvent(14.0, "WA", "IL", "recover")))
        result = RunContext().run(spec)
        assert result.summary["flows"] > 0

    def test_plain_tuples_accepted_as_events(self):
        as_tuples = wan_spec(events=((4.0, "WA", "IL", "fail"),
                                     (14.0, "WA", "IL", "recover")))
        as_objects = wan_spec(events=(LinkEvent(4.0, "WA", "IL", "fail"),
                                      LinkEvent(14.0, "WA", "IL", "recover")))
        first = RunContext().run(as_tuples)
        second = RunContext().run(as_objects)
        assert sorted(first.summary.items()) == sorted(second.summary.items())

    def test_unknown_action_rejected(self):
        spec = wan_spec(events=(LinkEvent(4.0, "WA", "IL", "explode"),))
        with pytest.raises(ExperimentError, match="explode"):
            RunContext().run(spec)

    def test_unknown_link_rejected(self):
        spec = wan_spec(events=(LinkEvent(4.0, "WA", "Narnia", "fail"),))
        with pytest.raises(ExperimentError, match="Narnia"):
            RunContext().run(spec)

    def test_legacy_failed_link_folds_into_schedule(self):
        legacy = wan_spec(failed_link=("WA", "IL"), failure_time=4.0)
        schedule = wan_spec(events=(LinkEvent(4.0, "WA", "IL", "fail"),))
        assert sorted(RunContext().run(legacy).summary.items()) == \
            sorted(RunContext().run(schedule).summary.items())

    def test_fail_recover_grid_serial_matches_parallel(self):
        # Network.recover_link scheduling must be honored identically in
        # worker processes: a fail -> recover schedule is the sensitive case.
        specs = [wan_spec(name=f"ev:{system}", system=system,
                          events=(LinkEvent(4.0, "WA", "IL", "fail"),
                                  LinkEvent(10.0, "WA", "IL", "recover")))
                 for system in ("contra", "shortest-path")]
        serial = run_grid(specs, processes=1)
        parallel = run_grid(specs, processes=2)
        assert _summaries(serial) == _summaries(parallel)


class TestTrafficPatternScenarios:
    def _pattern_specs(self, traffic, **extra):
        return [
            ScenarioSpec(name=f"{traffic}:{system}", system=system,
                         topology=TopologySpec("fattree", k=4, capacity=100.0),
                         config=TINY, workload="cache", load=0.6, seed=2,
                         traffic=traffic, stop_after_completion=True, **extra)
            for system in ("ecmp", "contra")
        ]

    def test_incast_serial_matches_parallel(self):
        specs = self._pattern_specs("incast", incast_fanin=6)
        assert _summaries(run_grid(specs, processes=1)) == \
            _summaries(run_grid(specs, processes=2))

    def test_permutation_runs_and_is_deterministic(self):
        specs = self._pattern_specs("permutation")
        first = run_grid(specs, processes=1)
        second = run_grid(specs, processes=2)
        assert _summaries(first) == _summaries(second)
        assert all(result.summary["flows"] > 0 for result in first)

    def test_explicit_senders_conflict_with_pattern_traffic(self):
        # incast/permutation compute their own pairing; silently ignoring
        # explicit sender/receiver lists would hide a spec mistake.
        base = self._pattern_specs("incast", incast_fanin=4)[0]
        conflicted = ScenarioSpec(**{**base.__dict__,
                                     "senders": ("h0_0_0",), "receivers": ("h3_1_0",)})
        with pytest.raises(ExperimentError, match="pairing"):
            RunContext().run(conflicted)

    def test_incast_knobs_require_incast_traffic(self):
        # incast_fanin on a "flows" spec means the user forgot traffic=
        # "incast"; silently running uniform traffic would measure the wrong
        # scenario.
        base = self._pattern_specs("flows")[0]
        for traffic in ("flows", "streams"):
            forgot = ScenarioSpec(**{**base.__dict__, "traffic": traffic,
                                     "incast_fanin": 8})
            with pytest.raises(ExperimentError, match="incast"):
                RunContext().run(forgot)

    def test_incast_load_is_receiver_scoped(self):
        # Doubling the fan-in must not double the offered traffic: the load
        # target is the receiver's access link, shared across senders.
        context = RunContext()
        small, big = (self._pattern_specs("incast", incast_fanin=f)[0] for f in (4, 8))
        topology = context.topology(small.topology)
        small_packets = sum(f.size_packets for f in context._flows(small, topology))
        big_packets = sum(f.size_packets for f in context._flows(big, topology))
        assert 0.5 < small_packets / big_packets < 2.0

    def test_workload_scale_knob_changes_flow_sizes(self):
        context = RunContext()
        base = self._pattern_specs("flows")[0]
        scaled = ScenarioSpec(**{**base.__dict__, "workload_scale": 1.0})
        topology = context.topology(base.topology)
        default_total = sum(f.size_packets for f in context._flows(base, topology))
        scaled_total = sum(f.size_packets for f in context._flows(scaled, topology))
        # TINY uses cache_scale=0.25, so scale 1.0 flows are markedly larger.
        assert scaled_total > default_total


class TestRecoverySweepScenario:
    def test_dip_at_failure_and_recovery_above_95_percent(self):
        results = run_recovery_sweep(TINY, fail_time=6.0, recover_time=14.0,
                                     run_duration=22.0)
        assert set(results) == {"contra", "hula"}
        for system, outcome in results.items():
            assert outcome.baseline_rate > 0, system
            # The failure is visible: some bin after fail_time dips.
            assert not math.isnan(outcome.dip_delay), system
            # ...and throughput returns to >= 95% of baseline after recovery.
            assert outcome.recovery_ratio >= 0.95, (system, outcome.recovery_ratio)

    def test_late_recovery_still_measures_the_final_bin(self):
        # When recover_time + settling leaves only the (possibly truncated)
        # final bin, the analysis must use it rather than report rate 0.
        from repro.experiments.failure_recovery import _analyse_sweep
        series = [(float(t), 10.0) for t in range(5)]
        outcome = _analyse_sweep("s", series, fail_time=2.0, recover_time=3.0)
        assert outcome.post_recovery_rate == 10.0

    def test_sweep_serial_matches_parallel(self):
        serial = run_recovery_sweep(TINY, fail_time=6.0, recover_time=14.0,
                                    run_duration=22.0, processes=1)
        parallel = run_recovery_sweep(TINY, fail_time=6.0, recover_time=14.0,
                                      run_duration=22.0, processes=2)
        for system in serial:
            assert serial[system].throughput == parallel[system].throughput


class TestMultiFailureScenario:
    def test_contra_outperforms_static_routing_under_failures(self):
        results = {r.system: r for r in run_multi_failure(TINY)}
        assert set(results) == {"shortest-path", "contra"}
        static, contra = results["shortest-path"], results["contra"]
        # Static shortest paths keep feeding the failed links; Contra routes
        # around both failures in turn.
        assert contra.summary["completed_flows"] >= static.summary["completed_flows"]
        assert contra.summary["drops"] <= static.summary["drops"]

    def test_multi_failure_serial_matches_parallel(self):
        serial = run_multi_failure(TINY, processes=1)
        parallel = run_multi_failure(TINY, processes=2)
        assert _summaries(serial) == _summaries(parallel)


class TestRegistryScenarios:
    def test_new_scenarios_registered(self):
        assert {"incast", "multi-failure", "recovery-sweep"} <= set(SCENARIOS)

    def test_recovery_sweep_scenario_end_to_end(self):
        outcome = run_scenario("recovery-sweep", TINY)
        assert "recovery_ratio" in outcome.text
        for system, payload in outcome.payload.items():
            assert payload["recovery_ratio"] >= 0.95, system

    def test_fig9_10_respects_config_sizes(self):
        # Regression: _fig9_10 ignored its ExperimentConfig, so run-grid
        # overrides never reached the scalability sweep.
        config = ExperimentConfig(scalability_fattree_sizes=(20,),
                                  scalability_random_sizes=())
        outcome = run_scenario("fig9-10", config)
        assert {point["size"] for point in outcome.payload} == {20}
        assert {point["family"] for point in outcome.payload} == {"fattree"}


class TestRecoveryCurveScenario:
    def test_registered(self):
        assert {"recovery-curve", "flow-size-sensitivity"} <= set(SCENARIOS)

    def test_grid_axis_is_the_event_schedule(self):
        from repro.experiments.failure_recovery import recovery_curve_specs
        specs = recovery_curve_specs(TINY, systems=("contra",),
                                     outages=(2.0, 6.0))
        schedules = [spec.events for spec in specs]
        assert len(set(schedules)) == 2
        for spec in specs:
            fail, recover = spec.events
            assert fail.action == "fail" and recover.action == "recover"
            assert recover.time > fail.time
            # The run must outlast its own schedule's settle-out.
            assert spec.run_duration > recover.time

    def test_curve_end_to_end(self):
        from repro.experiments.failure_recovery import run_recovery_curve
        points = run_recovery_curve(TINY, systems=("contra",),
                                    outages=(2.0, 6.0), fail_time=6.0)
        assert [p.outage_ms for p in points] == [2.0, 6.0]
        for point in points:
            assert point.baseline_rate > 0
            assert 0.0 <= point.dip_depth <= 1.0
            # The link comes back, so throughput must return to >= 95%.
            assert not math.isnan(point.recovery_time_ms)

    def test_scenario_outcome_has_curve_table(self):
        outcome = run_scenario("recovery-curve", TINY)
        assert "outage_ms" in outcome.text
        assert len(outcome.payload) == 2 * 3       # 2 systems x 3 outages
        assert {row["system"] for row in outcome.payload} == {"contra", "hula"}


class TestFlowSizeSensitivityScenario:
    def test_scale_factors_multiply_the_workload_scale(self):
        from repro.experiments.fct import flow_size_sensitivity_specs
        specs = flow_size_sensitivity_specs(TINY, systems=("ecmp",),
                                            scale_factors=(0.5, 2.0))
        scales = [spec.workload_scale for spec in specs]
        assert scales == [0.5 * TINY.websearch_scale, 2.0 * TINY.websearch_scale]

    def test_scenario_end_to_end(self):
        outcome = run_scenario("flow-size-sensitivity", TINY)
        assert "scale" in outcome.text
        assert len(outcome.payload) == 3 * 2       # 3 factors x 2 systems
        by_factor = {}
        for row in outcome.payload:
            factor = row["name"].split(":")[1]
            by_factor.setdefault(factor, []).append(row)
        assert set(by_factor) == {"0.5x", "1.0x", "2.0x"}
        for rows in by_factor.values():
            for row in rows:
                assert row["summary"]["completed_flows"] > 0
        # The offered load is held constant, so scaling every flow up means
        # proportionally *fewer* flows — the knob moved the distribution, not
        # the demand.
        flows = {factor: rows[0]["summary"]["flows"]
                 for factor, rows in by_factor.items()}
        assert flows["0.5x"] > flows["1.0x"] > flows["2.0x"]
