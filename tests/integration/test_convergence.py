"""Integration tests: the Contra protocol converges to the policy-optimal paths.

Figure 1 lists "Optimal — converges to best paths under stable metrics" as a
design goal.  These tests run the compiled protocol inside the simulator with
stable link metrics, then compare every source switch's converged choice
against the exhaustive reference oracle (`CompiledPolicy.reference_best_paths`).
"""

import pytest

from repro.core.builder import if_, inf, lt, matches, minimize, path, rank_tuple
from repro.core.compiler import compile_policy
from repro.core.policies import MU, congestion_aware
from repro.core.rank import INFINITY
from repro.protocol import ContraSystem
from repro.simulator import Network
from repro.topology import abilene, leafspine
from repro.topology.graph import Topology


def diamond_topology():
    """A-B, A-C, B-C, B-D, C-D with hosts on A, B and D (Figure 6a)."""
    topo = Topology("figure6")
    for switch in ("A", "B", "C", "D"):
        topo.add_switch(switch)
    for a, b in (("A", "B"), ("A", "C"), ("B", "C"), ("B", "D"), ("C", "D")):
        topo.add_link(a, b)
    for switch in ("A", "B", "D"):
        host = f"h{switch}"
        topo.add_host(host, switch)
        topo.add_link(host, switch)
    return topo


def converge(policy, topology, link_utils, probe_period=0.2, settle=5.0, **system_kwargs):
    """Run only the control plane (probes) with pinned link utilizations.

    ``link_utils`` maps directed (a, b) pairs to a fixed utilization; all other
    links report 0.  Pass ``probe_period=None`` to use the compiler's
    recommended period (>= 0.5x the worst RTT, §5.2) — required for optimality
    on topologies with heterogeneous latencies.  Returns (compiled, system,
    network).
    """
    compiled = compile_policy(policy, topology)
    system = ContraSystem(compiled, probe_period=probe_period, **system_kwargs)
    network = Network(topology, system)
    # Pin every switch-switch link's reported metrics so the protocol and the
    # oracle both see exactly the configured, stable utilizations.
    for (a, b), link in network.links.items():
        if not (network.is_switch(a) and network.is_switch(b)):
            continue
        value = link_utils.get((a, b), 0.0)
        link.metric_values = (  # type: ignore[method-assign]
            lambda v=value, lat=link.latency: {"util": v, "lat": lat, "len": 1.0})
    network.run(settle)
    return compiled, system, network


def protocol_path(system, network, src_switch, dst_switch, max_hops=12):
    """Follow each switch's current best/FwdT choice hop by hop (new flowlet)."""
    compiled = system.compiled
    logic = system.logic(src_switch)
    best = logic._best_key(dst_switch)
    if best is None:
        return None
    path_nodes = [src_switch]
    _, tag, pid = best
    current = src_switch
    for _ in range(max_hops):
        logic = system.logic(current)
        entry = logic.fwdt.lookup((dst_switch, tag, pid))
        if entry is None:
            return None
        tag = entry.next_tag
        current = entry.next_hop
        path_nodes.append(current)
        if current == dst_switch:
            return path_nodes
    return None


def oracle_metrics(network):
    def lookup(a, b):
        return network.link(a, b).metric_values()
    return lookup


class TestMinUtilConvergence:
    def test_leafspine_picks_least_utilized_spine(self):
        topo = leafspine(2, 2, hosts_per_leaf=1, capacity=50.0)
        utils = {("leaf0", "spine0"): 0.7, ("spine0", "leaf1"): 0.7,
                 ("leaf0", "spine1"): 0.1, ("spine1", "leaf1"): 0.1}
        compiled, system, network = converge(MU(), topo, utils)
        assert protocol_path(system, network, "leaf0", "leaf1") == ["leaf0", "spine1", "leaf1"]

    def test_diamond_matches_oracle(self):
        topo = diamond_topology()
        utils = {("A", "B"): 0.2, ("B", "A"): 0.2,
                 ("B", "D"): 0.8, ("D", "B"): 0.8,
                 ("A", "C"): 0.3, ("C", "A"): 0.3,
                 ("C", "D"): 0.1, ("D", "C"): 0.1,
                 ("B", "C"): 0.1, ("C", "B"): 0.1}
        compiled, system, network = converge(MU(), topo, utils)
        chosen = protocol_path(system, network, "A", "D")
        best_rank, best_paths = compiled.reference_best_paths("A", "D", oracle_metrics(network))
        assert chosen in best_paths
        # The protocol's rank for the chosen path equals the oracle's optimum.
        assert compiled.rank_of_path(chosen, oracle_metrics(network)) == best_rank

    def test_abilene_all_sources_match_oracle(self):
        topo = abilene(capacity=50.0, hosts_per_switch=1)
        utils = {("KSC", "IPL"): 0.9, ("IPL", "KSC"): 0.9,
                 ("DEN", "KSC"): 0.6, ("KSC", "DEN"): 0.6}
        # Abilene's heterogeneous latencies need a generous probe period: the
        # least-utilized path can be much longer (in propagation delay) than
        # the shortest path, and probes travelling it must arrive before the
        # next version invalidates them (§5.2).
        compiled, system, network = converge(MU(), topo, utils,
                                             probe_period=1.0, settle=20.0)
        for source in ("SEA", "LAX", "DEN"):
            chosen = protocol_path(system, network, source, "NYC")
            assert chosen is not None, f"{source} found no path"
            best_rank, best_paths = compiled.reference_best_paths(
                source, "NYC", oracle_metrics(network), cutoff=7)
            assert compiled.rank_of_path(chosen, oracle_metrics(network)) == best_rank


class TestConstrainedConvergence:
    def test_waypoint_policy_routes_through_waypoint(self):
        topo = diamond_topology()
        policy = minimize(if_(matches(".* C .*"), path.util, inf))
        utils = {("A", "B"): 0.0, ("B", "D"): 0.0}
        compiled, system, network = converge(policy, topo, utils)
        chosen = protocol_path(system, network, "A", "D")
        assert chosen is not None
        assert "C" in chosen

    def test_figure5_scenario_sources_get_their_own_best(self):
        """Figure 5: A uses A-B-D (rank 0) while B itself uses the least
        utilized B-C-D — the probe for A's constraint must not be discarded."""
        topo = diamond_topology()
        policy = minimize(if_(matches("A B D"), 0, path.util))
        utils = {("B", "D"): 0.3, ("D", "B"): 0.3,
                 ("B", "C"): 0.1, ("C", "B"): 0.1,
                 ("C", "D"): 0.2, ("D", "C"): 0.2,
                 ("A", "B"): 0.1, ("B", "A"): 0.1,
                 ("A", "C"): 0.4, ("C", "A"): 0.4}
        compiled, system, network = converge(policy, topo, utils)
        assert protocol_path(system, network, "A", "D") == ["A", "B", "D"]
        assert protocol_path(system, network, "B", "D") == ["B", "C", "D"]

    def test_forbidden_subpath_is_never_used(self):
        """§3 challenge #2: traffic must never traverse B then A."""
        topo = diamond_topology()
        policy = minimize(if_(matches(".* B A .*"), inf, path.util))
        utils = {("A", "C"): 0.9, ("C", "A"): 0.9, ("C", "D"): 0.9, ("D", "C"): 0.9}
        compiled, system, network = converge(policy, topo, utils)
        for source in ("A", "B"):
            chosen = protocol_path(system, network, source, "D")
            assert chosen is not None
            assert not any(chosen[i] == "B" and chosen[i + 1] == "A"
                           for i in range(len(chosen) - 1))

    def test_static_failover_policy_uses_primary(self):
        topo = diamond_topology()
        policy = minimize(if_(matches("A B D"), 0, if_(matches("A C D"), 1, inf)))
        compiled, system, network = converge(policy, topo, {})
        assert protocol_path(system, network, "A", "D") == ["A", "B", "D"]

    def test_unreachable_policy_installs_no_route(self):
        topo = diamond_topology()
        policy = minimize(if_(matches(".* Z .*"), path.util, inf))
        from repro.core.compiler import CompileOptions
        compiled = compile_policy(policy, topo, CompileOptions(strict_monotonicity=False))
        system = ContraSystem(compiled, probe_period=0.2)
        network = Network(topo, system)
        network.run(3.0)
        assert system.logic("A")._best_key("D") is None


class TestNonIsotonicConvergence:
    def test_congestion_aware_prefers_uncongested_paths(self):
        topo = diamond_topology()
        utils = {("A", "B"): 0.9, ("B", "A"): 0.9, ("B", "D"): 0.9, ("D", "B"): 0.9,
                 ("A", "C"): 0.3, ("C", "A"): 0.3, ("C", "D"): 0.3, ("D", "C"): 0.3}
        compiled, system, network = converge(congestion_aware(0.8), topo, utils)
        chosen = protocol_path(system, network, "A", "D")
        best_rank, best_paths = compiled.reference_best_paths("A", "D", oracle_metrics(network))
        assert compiled.rank_of_path(chosen, oracle_metrics(network)) == best_rank
        assert chosen == ["A", "C", "D"]

    def test_congestion_aware_switches_to_shortest_when_all_congested(self):
        topo = diamond_topology()
        utils = {(a, b): 0.95 for (a, b) in
                 [("A", "B"), ("B", "A"), ("B", "D"), ("D", "B"), ("A", "C"), ("C", "A"),
                  ("C", "D"), ("D", "C"), ("B", "C"), ("C", "B")]}
        compiled, system, network = converge(congestion_aware(0.8), topo, utils)
        chosen = protocol_path(system, network, "A", "D")
        # Above the threshold the policy prefers shortest paths: 2 hops.
        assert len(chosen) == 3

    def test_widest_shortest_decomposition_reaches_oracle_rank(self):
        topo = diamond_topology()
        policy = minimize(rank_tuple(path.util, path.len), name="widest-shortest")
        utils = {("B", "D"): 0.6, ("D", "B"): 0.6, ("A", "B"): 0.1, ("B", "A"): 0.1,
                 ("A", "C"): 0.2, ("C", "A"): 0.2, ("C", "D"): 0.2, ("D", "C"): 0.2}
        compiled, system, network = converge(policy, topo, utils)
        chosen = protocol_path(system, network, "A", "D")
        best_rank, best_paths = compiled.reference_best_paths("A", "D", oracle_metrics(network))
        assert compiled.rank_of_path(chosen, oracle_metrics(network)) == best_rank
