"""Integration tests for the lease-based work-stealing sweep coordinator.

The contracts under test (ARCHITECTURE.md §8 "Sweep coordinator contract"):

* lease acquire is single-winner (exclusive create), renewal moves the
  heartbeat, staleness is judged against the TTL, and reclaim of a stale
  lease is single-winner too (rename tombstone);
* a coordinated drain — any worker count, any interleaving, including a
  worker killed mid-lease and reclaimed after the TTL — produces a merged
  report byte-identical to the unsharded serial run (summary text and
  ``--json`` bytes), with exactly one store record per point in the
  crash-free paths;
* claims prefer the worker's current locality group, enter idle groups
  before stealing, and steal from the most-loaded active group;
* ``gc-results`` removes orphaned/stale leases, ``merge-results`` warns on
  live ones, and ``sweep-status`` renders per-group/per-worker progress.
"""

import json
import multiprocessing
import time

import pytest

from repro.exceptions import ExperimentError
from repro.experiments.config import ExperimentConfig
from repro.experiments.coordinator import (
    CoordinatedBackend,
    drain_store,
    gc_leases,
    lease_path,
    live_leases,
    read_lease,
    reclaim_lease,
    release_lease,
    renew_lease,
    sweep_status,
    try_acquire_lease,
)
from repro.experiments.registry import (
    GridScenario,
    run_scenario,
    run_scenario_coordinated,
    sweep_status_scenario,
)
from repro.experiments.results import ResultsStore, collect_results
from repro.experiments.runner import (
    ScenarioSpec,
    SerialBackend,
    TopologySpec,
    compile_group_key,
    group_label,
    run_grid,
    spec_hash,
)

TINY = ExperimentConfig(workload_duration=1.5, run_duration=20.0, loads=(0.4,),
                        websearch_scale=0.05, cache_scale=0.2)


def tiny_topology():
    return TopologySpec("fattree", k=4, capacity=TINY.host_capacity,
                        oversubscription=TINY.oversubscription)


def tiny_specs(systems=("ecmp", "contra"), loads=(0.4,)):
    return [
        ScenarioSpec(name=f"coord-test:{system}-{load}", system=system,
                     topology=tiny_topology(), config=TINY,
                     workload="web_search", load=load, seed=TINY.seed,
                     stop_after_completion=True)
        for system in systems for load in loads
    ]


KEY = "ab" * 32     # a syntactically valid spec-hash key for lease unit tests


class TestLeasePrimitives:
    def test_acquire_is_exclusive(self, tmp_path):
        assert try_acquire_lease(tmp_path, KEY, "w0", now=100.0)
        assert not try_acquire_lease(tmp_path, KEY, "w1", now=100.0)
        info = read_lease(tmp_path, KEY, now=101.0)
        assert info.owner == "w0" and not info.stale

    def test_renew_moves_the_heartbeat_and_keeps_acquire_time(self, tmp_path):
        try_acquire_lease(tmp_path, KEY, "w0", now=100.0)
        renew_lease(tmp_path, KEY, "w0", now=120.0)
        info = read_lease(tmp_path, KEY, now=121.0)
        assert info.heartbeat_unix == 120.0
        assert info.acquired_unix == 100.0
        assert not info.stale

    def test_staleness_is_judged_against_the_ttl(self, tmp_path):
        try_acquire_lease(tmp_path, KEY, "w0", now=100.0)
        assert not read_lease(tmp_path, KEY, now=100.0 + 29, ttl=30.0).stale
        assert read_lease(tmp_path, KEY, now=100.0 + 31, ttl=30.0).stale

    def test_reclaim_is_single_winner(self, tmp_path):
        try_acquire_lease(tmp_path, KEY, "dead", now=0.0)
        assert reclaim_lease(tmp_path, KEY, "w1")
        assert not reclaim_lease(tmp_path, KEY, "w2")
        assert read_lease(tmp_path, KEY) is None
        assert not list(tmp_path.glob("lease-*")), "reclaim left debris"

    def test_release_refuses_anothers_lease(self, tmp_path):
        try_acquire_lease(tmp_path, KEY, "w0", now=100.0)
        assert not release_lease(tmp_path, KEY, owner="w1")
        assert read_lease(tmp_path, KEY).owner == "w0"
        assert release_lease(tmp_path, KEY, owner="w0")
        assert read_lease(tmp_path, KEY) is None

    def test_unreadable_lease_counts_as_live_via_mtime(self, tmp_path):
        # A reader can catch a lease between create and content flush; it
        # must look freshly live, never reclaimable garbage.
        lease_path(tmp_path, KEY).write_text("")
        info = read_lease(tmp_path, KEY, ttl=30.0)
        assert info is not None and not info.stale

    def test_gc_leases_removes_orphaned_and_stale_only(self, tmp_path):
        done, pending, gone = "aa" * 32, "bb" * 32, "cc" * 32
        now = 1000.0
        try_acquire_lease(tmp_path, done, "w0", now=now)      # point complete
        try_acquire_lease(tmp_path, pending, "w0", now=now)   # live, pending
        try_acquire_lease(tmp_path, gone, "w0", now=now)      # not in grid
        removed, live = gc_leases(tmp_path, valid_keys={done, pending},
                                  completed_keys={done}, ttl=30.0,
                                  now=now + 1)
        assert (removed, live) == (2, 1)
        assert read_lease(tmp_path, pending) is not None
        removed, live = gc_leases(tmp_path, valid_keys={done, pending},
                                  completed_keys={done}, ttl=30.0,
                                  now=now + 31)               # now stale too
        assert (removed, live) == (1, 0)
        assert not list(tmp_path.glob("lease-*"))


class TestLocalityGroups:
    def test_compile_group_key_matches_the_compile_cache(self):
        ecmp, contra = tiny_specs(("ecmp", "contra"))
        assert compile_group_key(ecmp) == ("", ecmp.topology)
        assert compile_group_key(contra) == (contra.policy, contra.topology)

    def test_group_labels_are_readable(self):
        ecmp, contra = tiny_specs(("ecmp", "contra"))
        assert group_label(compile_group_key(ecmp)) == "fattree(k=4)"
        assert "fattree(k=4)+" in group_label(compile_group_key(contra))

    def test_drain_visits_each_group_once(self, tmp_path):
        # Grid order interleaves the groups; a locality-preferring drain
        # still executes group-by-group (one compile per group, not per
        # point) — the accounting must show each group entered exactly once.
        specs = tiny_specs(("ecmp", "contra"), loads=(0.4, 0.6))
        backend = CoordinatedBackend(tmp_path, owner="solo")
        backend.run(specs)
        assert backend.executed == len(specs)
        assert backend.stolen == 0 and backend.reclaimed == 0
        assert len(backend.groups_entered) == 2
        assert len(set(backend.groups_entered)) == 2

    def test_claims_skip_points_under_anothers_live_lease(self, tmp_path):
        specs = tiny_specs(("ecmp", "hula"))
        keys = [spec_hash(spec) for spec in specs]
        try_acquire_lease(tmp_path, keys[0], "other")
        backend = CoordinatedBackend(tmp_path, owner="me")
        backend.drain(specs)
        assert backend.executed == 1          # only the unleased point
        assert keys[1] in ResultsStore(tmp_path).load()
        assert keys[0] not in ResultsStore(tmp_path).load()

    def test_orphaned_lease_on_completed_point_is_ignored(self, tmp_path):
        # A worker killed between record and release leaves a lease on a
        # *complete* point; it must not wedge (or even delay) other workers.
        specs = tiny_specs(("ecmp",))
        key = spec_hash(specs[0])
        solo = CoordinatedBackend(tmp_path, owner="w0")
        solo.run(specs)
        try_acquire_lease(tmp_path, key, "dead")
        done = CoordinatedBackend(tmp_path, owner="w1")
        results = done.run(specs)
        assert done.executed == 0 and done.idle_s == 0.0
        assert len(results) == 1


class TestCoordinatedByteIdentity:
    def test_single_worker_matches_serial(self, tmp_path):
        specs = tiny_specs(("ecmp", "contra"), loads=(0.4, 0.6))
        serial = run_grid(specs, backend=SerialBackend())
        coordinated = run_grid(specs, backend=CoordinatedBackend(tmp_path))
        assert [r.summary for r in coordinated] == [r.summary for r in serial]
        assert not live_leases(tmp_path), "drain left leases behind"
        merged = collect_results(specs, ResultsStore(tmp_path))
        assert [r.summary for r in merged] == [r.summary for r in serial]

    def test_two_processes_one_store_converge(self, tmp_path):
        """Two real concurrent drain processes + the parent as collector."""
        specs = tiny_specs(("ecmp", "contra", "hula"), loads=(0.4, 0.6))
        serial = run_grid(specs, backend=SerialBackend())
        ctx = multiprocessing.get_context("fork")
        workers = [ctx.Process(target=drain_store, args=(specs, tmp_path),
                               kwargs={"owner": f"w{i}", "ttl": 10.0})
                   for i in range(2)]
        for worker in workers:
            worker.start()
        collector = CoordinatedBackend(tmp_path, owner="collector", ttl=10.0,
                                       poll_interval=0.05)
        results = collector.run(specs)
        for worker in workers:
            worker.join()
            assert worker.exitcode == 0
        assert [r.summary for r in results] == [r.summary for r in serial]
        assert not live_leases(tmp_path)
        # Every point executed exactly once across the three drains:
        # the records' owner tags partition the grid.
        records = [json.loads(line)
                   for file in tmp_path.glob("results-worker-*.jsonl")
                   for line in file.read_text().splitlines()]
        assert sorted(record["spec_hash"] for record in records) == \
            sorted(spec_hash(spec) for spec in specs)

    def test_killed_worker_is_reclaimed_and_report_is_identical(self, tmp_path):
        """The crash-safety satellite: die mid-lease, TTL lapse, reclaim."""
        class DiesAfterOne(SerialBackend):
            def __init__(self):
                super().__init__()
                self.ran = 0

            def run_iter_timed(self, inner_specs):
                # The coordinator feeds one spec per call; crash on the
                # second *call*, after the lease for it was acquired.
                self.ran += 1
                if self.ran > 1:
                    raise KeyboardInterrupt("simulated crash")
                yield from super().run_iter_timed(inner_specs)

        specs = tiny_specs(("ecmp", "hula", "contra"))
        serial = run_grid(specs, backend=SerialBackend())
        victim = CoordinatedBackend(tmp_path, inner=DiesAfterOne(),
                                    owner="victim", ttl=0.5)
        with pytest.raises(KeyboardInterrupt):
            victim.drain(specs)
        assert len(ResultsStore(tmp_path).load()) == 1
        orphans = live_leases(tmp_path)
        assert len(orphans) == 1 and orphans[0].owner == "victim"

        time.sleep(0.6)                       # let the orphan lease go stale
        rescuer = CoordinatedBackend(tmp_path, owner="rescuer", ttl=0.5,
                                     poll_interval=0.05)
        results = rescuer.run(specs)
        assert rescuer.reclaimed >= 1
        assert [r.summary for r in results] == [r.summary for r in serial]
        assert not live_leases(tmp_path)
        # Exactly one record per point — the victim's completed point was
        # skipped, not re-executed.
        records = [json.loads(line)
                   for file in tmp_path.glob("results-worker-*.jsonl")
                   for line in file.read_text().splitlines()]
        assert sorted(r["spec_hash"] for r in records) == \
            sorted(spec_hash(spec) for spec in specs)

    def test_ttl_must_be_positive(self, tmp_path):
        with pytest.raises(ExperimentError, match="TTL"):
            CoordinatedBackend(tmp_path, ttl=0.0)


class TestSweepStatus:
    def test_status_counts_groups_workers_and_leases(self, tmp_path):
        specs = tiny_specs(("ecmp", "contra"), loads=(0.4, 0.6))
        backend = CoordinatedBackend(tmp_path, owner="w0")
        backend.run(specs[:3])                # one point left pending
        try_acquire_lease(tmp_path, spec_hash(specs[3]), "w1",
                          spec_name=specs[3].name)
        status = sweep_status(specs, tmp_path)
        assert (status.total, status.complete) == (4, 3)
        assert (status.leased, status.pending) == (1, 0)
        assert {group.label for group in status.groups} == \
            {group_label(compile_group_key(spec)) for spec in specs}
        by_owner = {worker.owner: worker for worker in status.workers}
        assert by_owner["w0"].executed == 3
        assert by_owner["w1"].current == specs[3].name
        rendered = status.render()
        assert "3/4 points complete" in rendered
        assert "w0" in rendered and "w1" in rendered


def _tiny_grid_entry():
    def build(config):
        return tiny_specs(("ecmp", "contra"), loads=(0.4, 0.6))

    def finish(config, results):
        from repro.experiments.registry import ScenarioOutcome
        return ScenarioOutcome(
            "fig13", json.dumps([r.summary for r in results], sort_keys=True),
            [r.summary for r in results])

    return GridScenario(build, finish)


class TestScenarioCoordination:
    def test_coordinated_outcome_matches_unsharded(self, tmp_path, monkeypatch):
        from repro.experiments import registry
        monkeypatch.setitem(registry.SCENARIOS, "fig13", _tiny_grid_entry())
        unsharded = run_scenario("fig13", TINY)
        coordinated = run_scenario_coordinated("fig13", TINY,
                                               str(tmp_path / "store"))
        assert coordinated.outcome.text == unsharded.text
        assert json.dumps(coordinated.outcome.payload, sort_keys=True) == \
            json.dumps(unsharded.payload, sort_keys=True)
        assert coordinated.total_points == 4
        assert sum(w["executed"] for w in coordinated.workers) == 4
        assert "coordinated drain" in coordinated.text

    def test_two_invocations_split_the_work(self, tmp_path, monkeypatch):
        from repro.experiments import registry
        monkeypatch.setitem(registry.SCENARIOS, "fig13", _tiny_grid_entry())
        store = str(tmp_path / "store")
        first = run_scenario_coordinated("fig13", TINY, store)
        second = run_scenario_coordinated("fig13", TINY, store)
        assert sum(w["executed"] for w in first.workers) == 4
        assert sum(w["executed"] for w in second.workers) == 0
        assert second.outcome.text == first.outcome.text

    def test_legacy_scenarios_rejected(self, tmp_path):
        with pytest.raises(ExperimentError, match="not a single spec grid"):
            run_scenario_coordinated("ablations", TINY, str(tmp_path))
        with pytest.raises(ExperimentError, match="not a single spec grid"):
            sweep_status_scenario("ablations", TINY, str(tmp_path))

    def test_workers_must_be_positive(self, tmp_path):
        with pytest.raises(ExperimentError, match="workers"):
            run_scenario_coordinated("fig13", TINY, str(tmp_path), workers=0)


class TestCliCoordination:
    def test_coordinate_rejects_contradictory_flags(self, tmp_path):
        from repro import cli
        with pytest.raises(SystemExit, match="mutually exclusive"):
            cli.main(["run-grid", "fig11", "--coordinate", str(tmp_path),
                      "--shard", "0/2", "--results-dir", str(tmp_path)])
        with pytest.raises(SystemExit, match="drop --results-dir"):
            cli.main(["run-grid", "fig11", "--coordinate", str(tmp_path),
                      "--results-dir", str(tmp_path)])
        with pytest.raises(SystemExit, match="--workers"):
            cli.main(["run-grid", "fig11", "--coordinate", str(tmp_path),
                      "--processes", "2"])
        with pytest.raises(SystemExit, match="--workers only applies"):
            cli.main(["run-grid", "fig11", "--workers", "2"])

    def test_sweep_status_requires_existing_dir(self, tmp_path):
        from repro import cli
        with pytest.raises(SystemExit, match="does not exist"):
            cli.main(["sweep-status", "fig11",
                      "--results-dir", str(tmp_path / "nope")])

    def test_cli_coordinate_end_to_end(self, tmp_path, capsys, monkeypatch):
        """Two sequential --coordinate invocations + sweep-status + gc.

        The second invocation executes nothing (the store is complete) but
        still prints the identical full report — the convergence contract —
        and its --json bytes match the plain unsharded run's exactly.
        """
        from repro import cli
        from repro.experiments import registry
        monkeypatch.setitem(registry.SCENARIOS, "fig13", _tiny_grid_entry())
        store = tmp_path / "store"

        first_json = tmp_path / "first.json"
        assert cli.main(["run-grid", "fig13", "--coordinate", str(store),
                         "--json", str(first_json)]) == 0
        first_out = capsys.readouterr().out
        assert "coordinated drain: 4 of 4" in first_out

        second_json = tmp_path / "second.json"
        assert cli.main(["run-grid", "fig13", "--coordinate", str(store),
                         "--json", str(second_json)]) == 0
        second_out = capsys.readouterr().out
        assert "coordinated drain: 0 of 4" in second_out
        assert second_json.read_bytes() == first_json.read_bytes()

        unsharded_json = tmp_path / "unsharded.json"
        assert cli.main(["run-grid", "fig13", "--json",
                         str(unsharded_json)]) == 0
        capsys.readouterr()
        assert first_json.read_bytes() == unsharded_json.read_bytes()

        assert cli.main(["sweep-status", "fig13",
                         "--results-dir", str(store)]) == 0
        status_out = capsys.readouterr().out
        assert "4/4 points complete" in status_out

        # gc on the drained store: nothing stale, no leases, still complete.
        assert cli.main(["gc-results", "fig13",
                         "--results-dir", str(store)]) == 0
        gc_out = capsys.readouterr().out
        assert "kept 4 of 4" in gc_out
        assert cli.main(["merge-results", "fig13",
                         "--results-dir", str(store),
                         "--json", str(second_json)]) == 0
        capsys.readouterr()
        assert second_json.read_bytes() == unsharded_json.read_bytes()

    def test_cli_merge_warns_on_live_leases(self, tmp_path, capsys, monkeypatch):
        from repro import cli
        from repro.experiments import registry
        monkeypatch.setitem(registry.SCENARIOS, "fig13", _tiny_grid_entry())
        store = tmp_path / "store"
        assert cli.main(["run-grid", "fig13", "--coordinate", str(store)]) == 0
        capsys.readouterr()
        # Simulate a still-running drain holding a live lease post-record.
        specs = tiny_specs(("ecmp", "contra"), loads=(0.4, 0.6))
        try_acquire_lease(store, spec_hash(specs[0]), "slow-worker")
        assert cli.main(["merge-results", "fig13",
                         "--results-dir", str(store)]) == 0
        captured = capsys.readouterr()
        assert "1 live lease(s) remain" in captured.err

    def test_cli_gc_reports_lease_removal(self, tmp_path, capsys, monkeypatch):
        from repro import cli
        from repro.experiments import registry
        monkeypatch.setitem(registry.SCENARIOS, "fig13", _tiny_grid_entry())
        store = tmp_path / "store"
        assert cli.main(["run-grid", "fig13", "--coordinate", str(store)]) == 0
        capsys.readouterr()
        specs = tiny_specs(("ecmp", "contra"), loads=(0.4, 0.6))
        try_acquire_lease(store, spec_hash(specs[0]), "dead")  # orphaned
        assert cli.main(["gc-results", "fig13",
                         "--results-dir", str(store)]) == 0
        gc_out = capsys.readouterr().out
        assert "1 orphaned/stale removed" in gc_out
        assert not list(store.glob("lease-*"))
