"""Integration tests for the ScenarioSpec/RunContext/run_grid experiment layer.

The contract under test: a spec is pure picklable data, derived state is
cached per context, and a grid's results are byte-identical whether executed
serially, re-executed, or fanned across worker processes.
"""

import pickle

import pytest

from repro.experiments.config import ExperimentConfig
from repro.experiments.registry import SCENARIOS, run_scenario
from repro.experiments.runner import (
    RunContext,
    ScenarioSpec,
    TopologySpec,
    resolve_processes,
    run_grid,
)

TINY = ExperimentConfig(workload_duration=4.0, run_duration=30.0, loads=(0.6,),
                        websearch_scale=0.05)


def tiny_specs(systems=("ecmp", "contra")):
    topology = TopologySpec("fattree", k=4, capacity=TINY.host_capacity,
                            oversubscription=TINY.oversubscription)
    return [
        ScenarioSpec(name=f"grid-test:{system}", system=system, topology=topology,
                     config=TINY, workload="web_search", load=0.6, seed=TINY.seed,
                     stop_after_completion=True)
        for system in systems
    ]


class TestScenarioSpec:
    def test_specs_pickle_roundtrip(self):
        for spec in tiny_specs():
            assert pickle.loads(pickle.dumps(spec)) == spec

    def test_unknown_topology_family_rejected(self):
        from repro.exceptions import ExperimentError
        with pytest.raises(ExperimentError):
            TopologySpec("moebius").build()

    def test_unknown_traffic_shape_rejected(self):
        from repro.exceptions import ExperimentError
        spec = tiny_specs()[0]
        bad = ScenarioSpec(**{**spec.__dict__, "traffic": "carrier-pigeon"})
        with pytest.raises(ExperimentError):
            RunContext().run(bad)


class TestRunContextCaching:
    def test_topology_and_compiled_policy_are_reused(self):
        context = RunContext()
        spec = tiny_specs(("contra",))[0]
        first_topology = context.topology(spec.topology)
        first_compiled = context.compiled_policy(spec.policy, spec.topology)
        assert context.topology(spec.topology) is first_topology
        assert context.compiled_policy(spec.policy, spec.topology) is first_compiled

    def test_workload_cache_shares_flows_across_systems(self):
        context = RunContext()
        ecmp_spec, contra_spec = tiny_specs()
        topology = context.topology(ecmp_spec.topology)
        assert context._flows(ecmp_spec, topology) is context._flows(contra_spec, topology)


class TestGridDeterminism:
    def _summaries(self, results):
        return [(result.name, sorted(result.summary.items())) for result in results]

    def test_rerun_is_byte_identical(self):
        first = run_grid(tiny_specs(), processes=1)
        second = run_grid(tiny_specs(), processes=1)
        assert self._summaries(first) == self._summaries(second)

    def test_parallel_matches_serial(self):
        serial = run_grid(tiny_specs(), processes=1)
        parallel = run_grid(tiny_specs(), processes=2)
        assert self._summaries(serial) == self._summaries(parallel)

    def test_results_preserve_spec_order(self):
        specs = tiny_specs(("contra", "ecmp", "hula"))
        results = run_grid(specs, processes=2)
        assert [result.name for result in results] == [spec.name for spec in specs]

    def test_same_seed_same_summary_two_contexts(self):
        spec = tiny_specs(("contra",))[0]
        first = RunContext().run(spec)
        second = RunContext().run(spec)
        assert sorted(first.summary.items()) == sorted(second.summary.items())


class TestResolveProcesses:
    def test_explicit_wins(self, monkeypatch):
        monkeypatch.setenv("CONTRA_PROCS", "7")
        assert resolve_processes(3, tasks=100) == 3

    def test_env_default(self, monkeypatch):
        monkeypatch.setenv("CONTRA_PROCS", "4")
        assert resolve_processes(None, tasks=100) == 4

    def test_serial_default_without_env(self, monkeypatch):
        monkeypatch.delenv("CONTRA_PROCS", raising=False)
        assert resolve_processes(None, tasks=100) == 1

    def test_capped_by_tasks(self):
        assert resolve_processes(16, tasks=3) == 3

    def test_zero_means_all_cores(self):
        import os
        assert resolve_processes(0, tasks=1000) == min(os.cpu_count() or 1, 1000)


class TestScenarioRegistry:
    def test_names_cover_every_figure(self):
        assert {"fig9-10", "fig11", "fig12", "fig13", "fig14", "fig15", "fig16",
                "ablations"} <= set(SCENARIOS)

    def test_unknown_scenario_raises(self):
        with pytest.raises(KeyError):
            run_scenario("fig99", TINY)

    def test_fig13_scenario_runs_end_to_end(self):
        outcome = run_scenario("fig13", TINY)
        assert "ecmp" in outcome.payload and "contra" in outcome.payload
        assert "p99" in outcome.text
