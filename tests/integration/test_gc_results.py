"""Results-store garbage collection: drop stale records, compact shards."""

import json

import pytest

from repro import cli
from repro.exceptions import ExperimentError
from repro.experiments.config import ExperimentConfig
from repro.experiments.registry import gc_scenario, merge_scenario, run_scenario_shard
from repro.experiments.results import ResultsStore, gc_results
from repro.experiments.runner import ScenarioSpec, TopologySpec, spec_hash

TINY = ExperimentConfig(workload_duration=1.5, run_duration=20.0, loads=(0.4,),
                        websearch_scale=0.05, cache_scale=0.2)
#: A config the kept records were NOT produced under (stale spec hashes).
OTHER = ExperimentConfig(workload_duration=1.0, run_duration=15.0, loads=(0.4,),
                         websearch_scale=0.05, cache_scale=0.2)


def spec_for(config, system="ecmp"):
    return ScenarioSpec(
        name=f"gc-test:{system}", system=system,
        topology=TopologySpec("fattree", k=4, capacity=config.host_capacity,
                              oversubscription=config.oversubscription),
        config=config, workload="web_search", load=0.4, seed=config.seed,
        stop_after_completion=True)


def fake_record(spec, summary_value=1.0):
    return {
        "spec_hash": spec_hash(spec),
        "spec_name": spec.name,
        "result": {"name": spec.name, "system": spec.system,
                   "workload": spec.workload, "load": spec.load,
                   "seed": spec.seed, "summary": {"value": summary_value},
                   "queue_cdf": None, "throughput": None},
        "point_wall_s": 0.5,
    }


def write_records(path, records, torn_tail=False):
    with path.open("w", encoding="utf-8") as handle:
        for record in records:
            handle.write(json.dumps(record, separators=(",", ":")) + "\n")
        if torn_tail:
            handle.write('{"spec_hash": "deadbeef", "result"')


class TestGcResults:
    def test_drops_stale_dedups_and_compacts(self, tmp_path):
        current = [spec_for(TINY, "ecmp"), spec_for(TINY, "contra")]
        stale = spec_for(OTHER, "ecmp")
        write_records(tmp_path / "results-shard0of2.jsonl",
                      [fake_record(current[0]), fake_record(stale)])
        write_records(tmp_path / "results-shard1of2.jsonl",
                      [fake_record(current[1]), fake_record(current[0])],
                      torn_tail=True)
        (tmp_path / "shard0of2.meta.json").write_text("{}\n")

        summary = gc_results(current, tmp_path)
        assert summary == {"total_records": 4, "kept": 2, "dropped_stale": 1,
                           "dropped_duplicates": 1, "missing": 0,
                           "leases_removed": 0, "leases_live": 0}
        files = sorted(p.name for p in tmp_path.iterdir())
        assert files == ["results-shard0of1.jsonl"]    # metas + old shards gone
        # Kept records preserved byte-for-byte (incl. wall-clock), spec order.
        store = ResultsStore(tmp_path)
        assert store.total_wall_s() == 1.0
        loaded = store.load()
        assert set(loaded) == {spec_hash(spec) for spec in current}

    def test_conflicting_duplicates_raise(self, tmp_path):
        spec = spec_for(TINY)
        write_records(tmp_path / "results-shard0of1.jsonl",
                      [fake_record(spec, 1.0), fake_record(spec, 2.0)])
        with pytest.raises(ExperimentError, match="conflicting"):
            gc_results([spec], tmp_path)

    def test_gc_then_merge_is_byte_identical(self, tmp_path):
        for index in range(2):
            run_scenario_shard("fig13", TINY, tmp_path, index, 2)
        before = merge_scenario("fig13", TINY, tmp_path)
        # Pollute with a record no current spec owns, then GC.
        write_records(tmp_path / "results-stale.jsonl",
                      [fake_record(spec_for(OTHER))])
        summary = gc_scenario("fig13", TINY, tmp_path)
        assert summary["dropped_stale"] == 1 and summary["missing"] == 0
        after = merge_scenario("fig13", TINY, tmp_path)
        assert after.text == before.text
        assert after.payload == before.payload

    def test_gc_reports_missing_points(self, tmp_path):
        specs = [spec_for(TINY, "ecmp"), spec_for(TINY, "contra")]
        write_records(tmp_path / "results-shard0of1.jsonl",
                      [fake_record(specs[0])])
        summary = gc_results(specs, tmp_path)
        assert summary["missing"] == 1

    def test_gc_removes_orphaned_and_stale_leases_keeps_live(self, tmp_path):
        from repro.experiments.coordinator import try_acquire_lease

        done, pending = spec_for(TINY, "ecmp"), spec_for(TINY, "contra")
        write_records(tmp_path / "results-shard0of1.jsonl",
                      [fake_record(done)])
        # Orphaned: its point is already recorded.  Live: pending point,
        # fresh heartbeat — a drain is presumably still executing it.
        try_acquire_lease(tmp_path, spec_hash(done), "dead")
        try_acquire_lease(tmp_path, spec_hash(pending), "busy")
        summary = gc_results([done, pending], tmp_path)
        assert summary["leases_removed"] == 1
        assert summary["leases_live"] == 1
        leases = sorted(p.name for p in tmp_path.glob("lease-*"))
        assert leases == [f"lease-{spec_hash(pending)}.json"]

    def test_gc_sweeps_worker_metas_and_lease_debris(self, tmp_path):
        spec = spec_for(TINY)
        write_records(tmp_path / "results-worker-w0.jsonl", [fake_record(spec)])
        (tmp_path / "worker-w0.meta.json").write_text("{}\n")
        (tmp_path / f"lease-{spec_hash(spec)}.json.w1.tmp").write_text("{}")
        summary = gc_results([spec], tmp_path)
        assert summary["kept"] == 1
        files = sorted(p.name for p in tmp_path.iterdir())
        assert files == ["results-shard0of1.jsonl"]


class TestGcCli:
    def test_cli_gc_results(self, tmp_path, capsys):
        store_dir = tmp_path / "store"
        store_dir.mkdir()
        spec = spec_for(TINY)
        write_records(store_dir / "results-shard0of1.jsonl", [fake_record(spec)])
        # fig13's quick-preset grid differs from TINY's specs: everything in
        # the store is stale under the CLI's preset and gets dropped.
        assert cli.main(["gc-results", "fig13", "--results-dir",
                         str(store_dir)]) == 0
        out = capsys.readouterr().out
        assert "kept 0 of 1" in out and "1 stale" in out

    def test_cli_rejects_missing_directory(self, tmp_path):
        with pytest.raises(SystemExit, match="does not exist"):
            cli.main(["gc-results", "fig13", "--results-dir",
                      str(tmp_path / "absent")])

    def test_cli_rejects_non_grid_scenario(self, tmp_path):
        store_dir = tmp_path / "store"
        store_dir.mkdir()
        with pytest.raises(SystemExit, match="not a single spec grid"):
            cli.main(["gc-results", "fig9-10", "--results-dir", str(store_dir)])
