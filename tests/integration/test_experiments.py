"""Integration tests for the experiment drivers (scaled-down configurations).

Each driver is run with tiny parameters; the assertions check the *structure*
and the qualitative relations the paper reports, not absolute numbers.
"""

import math

import pytest

from repro.experiments import report
from repro.experiments.ablations import (
    run_flowlet_timeout_ablation,
    run_probe_period_ablation,
    run_tag_minimization_ablation,
    run_versioning_ablation,
)
from repro.experiments.config import ExperimentConfig, default_config, full_config, quick_config
from repro.experiments.failure_recovery import run_failure_recovery
from repro.experiments.fct import default_failed_link, run_abilene_fct, run_fattree_fct, run_queue_cdf
from repro.experiments.overhead import run_overhead_experiment
from repro.experiments.runner import build_routing_system, datacenter_policy
from repro.experiments.scalability import run_scalability_sweep, scalability_policies
from repro.exceptions import ExperimentError
from repro.topology import fattree

TINY = ExperimentConfig(workload_duration=5.0, run_duration=40.0, loads=(0.6,),
                        websearch_scale=0.05, cache_scale=0.2)


class TestConfig:
    def test_presets_scale_durations(self):
        assert quick_config().workload_duration < default_config().workload_duration
        assert len(full_config().loads) > len(default_config().loads)

    def test_scaled_overrides_loads(self):
        config = default_config().scaled(0.5, loads=(0.3,))
        assert config.loads == (0.3,)
        assert config.workload_duration == pytest.approx(
            default_config().workload_duration * 0.5)


class TestRunnerHelpers:
    def test_unknown_system_rejected(self):
        topo = fattree(4)
        with pytest.raises(ExperimentError):
            build_routing_system("ospf", topo, TINY)

    def test_default_failed_link_is_agg_core(self):
        topo = fattree(4)
        agg, core = default_failed_link(topo)
        assert topo.node_role(agg) == "aggregation"
        assert topo.node_role(core) == "core"

    def test_datacenter_policy_uses_len_then_util(self):
        assert set(datacenter_policy().attributes()) == {"len", "util"}


class TestScalabilitySweep:
    def test_sweep_produces_one_point_per_combination(self):
        points = run_scalability_sweep(families=("fattree",), fattree_sizes=(20, 45),
                                       policies=("MU", "WP"))
        assert len(points) == 4
        assert {p.policy for p in points} == {"MU", "WP"}

    def test_compile_time_grows_with_size(self):
        points = run_scalability_sweep(families=("random",), random_sizes=(50, 200),
                                       policies=("MU",))
        small, large = sorted(points, key=lambda p: p.size)
        assert large.compile_time_s > small.compile_time_s

    def test_regex_policy_needs_more_state_than_mu(self):
        points = run_scalability_sweep(families=("fattree",), fattree_sizes=(20,),
                                       policies=("MU", "WP", "CA"))
        by_policy = {p.policy: p for p in points}
        assert by_policy["WP"].max_state_kb > by_policy["MU"].max_state_kb
        assert by_policy["CA"].max_state_kb > by_policy["MU"].max_state_kb
        assert by_policy["CA"].num_probe_ids == 2

    @pytest.mark.slow
    def test_state_stays_well_under_switch_capacity(self):
        """Figure 10: even at 500 switches the state stays far below MBs."""
        points = run_scalability_sweep(families=("fattree",), fattree_sizes=(500,),
                                       policies=("MU",))
        assert points[0].max_state_kb < 1024

    def test_policies_bound_to_topology(self):
        topo = fattree(4, hosts_per_edge=0)
        bound = scalability_policies(topo)
        assert set(bound) == {"MU", "WP", "CA"}

    def test_report_formatting(self):
        points = run_scalability_sweep(families=("fattree",), fattree_sizes=(20,),
                                       policies=("MU",))
        text = report.format_scalability(points)
        assert "compile_s" in text and "fattree" in text


class TestFctExperiments:
    def test_fig11_shape(self):
        points = run_fattree_fct(TINY, loads=(0.8,), workloads=("web_search",))
        by_system = {p.system: p for p in points}
        assert set(by_system) == {"ecmp", "contra", "hula"}
        for point in points:
            assert point.completed > 0
            assert not math.isnan(point.avg_fct_ms)
        # At high load the utilization-aware systems are at least competitive
        # with ECMP (the paper reports a clear win; with the tiny preset we
        # only assert the ordering does not invert badly).
        assert by_system["contra"].avg_fct_ms <= by_system["ecmp"].avg_fct_ms * 1.15
        assert by_system["hula"].avg_fct_ms <= by_system["ecmp"].avg_fct_ms * 1.15
        text = report.format_fct(points)
        assert "avg_fct_ms" in text

    def test_fig12_asymmetric_hurts_ecmp(self):
        points = run_fattree_fct(TINY, loads=(0.8,), workloads=("web_search",),
                                 asymmetric=True)
        by_system = {p.system: p for p in points}
        assert by_system["ecmp"].drops > by_system["contra"].drops
        assert by_system["contra"].completed >= by_system["ecmp"].completed

    def test_fig13_queue_cdf_contra_shorter_than_ecmp(self):
        cdfs = run_queue_cdf(TINY, load=0.6)
        assert set(cdfs) == {"ecmp", "contra"}
        assert cdfs["contra"][1.0] <= cdfs["ecmp"][1.0]
        text = report.format_queue_cdf(cdfs)
        assert "p99" in text

    def test_fig15_contra_beats_static_routing_on_abilene(self):
        points = run_abilene_fct(TINY.scaled(2.0, loads=(0.9,)), loads=(0.9,),
                                 workloads=("web_search",))
        by_system = {p.system: p for p in points}
        assert set(by_system) == {"shortest-path", "contra", "spain"}
        for point in points:
            assert point.completed > 0
        assert by_system["contra"].avg_fct_ms <= by_system["shortest-path"].avg_fct_ms


class TestOverheadExperiment:
    def test_fig16_ordering_and_magnitude(self):
        points = run_overhead_experiment(TINY, loads=(0.6,), workloads=("web_search",))
        by_system = {p.system: p for p in points}
        assert by_system["ecmp"].normalized_vs_ecmp == pytest.approx(1.0)
        assert by_system["hula"].normalized_vs_ecmp >= 1.0
        assert by_system["contra"].normalized_vs_ecmp >= by_system["hula"].normalized_vs_ecmp
        # Capacity-corrected overhead is small (the paper reports ~0.8%).
        assert by_system["contra"].normalized_vs_ecmp_scaled < 1.25
        assert by_system["contra"].loop_fraction < 0.01
        text = report.format_overhead(points)
        assert "norm_scaled" in text


class TestFailureRecoveryExperiment:
    def test_fig14_recovery_within_a_few_ms(self):
        results = run_failure_recovery(TINY, failure_time=20.0, run_duration=40.0)
        assert set(results) == {"contra", "hula"}
        for result in results.values():
            assert result.baseline_rate > 0
            assert result.failure_detections >= 1
            # Either no visible dip (loss below threshold) or a fast recovery.
            assert math.isnan(result.dip_delay) or result.recovered
            if result.recovered:
                assert result.recovery_delay <= 5.0
        text = report.format_recovery(results)
        assert "recovered_after_ms" in text


class TestAblations:
    def test_probe_period_ablation_runs(self):
        points = run_probe_period_ablation(TINY, periods=(0.256, 1.024), load=0.5)
        assert len(points) == 2
        assert all(p.completed > 0 for p in points)
        # Longer periods send fewer probes.
        assert points[1].overhead_ratio < points[0].overhead_ratio
        assert "probe_period_ms" in report.format_ablation(points)

    def test_flowlet_timeout_ablation_runs(self):
        points = run_flowlet_timeout_ablation(TINY, timeouts=(0.1, 1.6), load=0.5)
        assert len(points) == 2
        assert all(p.completed > 0 for p in points)

    def test_versioning_ablation_runs(self):
        points = run_versioning_ablation(TINY, load=0.5)
        assert {p.value for p in points} == {0.0, 1.0}
        assert all(p.completed > 0 for p in points)

    def test_tag_minimization_reduces_or_keeps_tags(self):
        points = run_tag_minimization_ablation(sizes=(20,))
        minimized = next(p for p in points if p.minimize_tags)
        raw = next(p for p in points if not p.minimize_tags)
        assert minimized.pg_nodes <= raw.pg_nodes
        assert minimized.max_tags_per_switch <= raw.max_tags_per_switch
