"""Integration tests reproducing the paper's illustrative scenarios.

* Figure 4(b)-(e): on a non-tree topology with changing metrics, versioned
  probes prevent the persistent loop that an unversioned distance-vector
  protocol can form.
* Figure 4(f)-(h): constrained routing — traffic must never traverse B then A
  even while preferences flip.
* Figure 8(a): policy-aware flowlet switching — packets constrained to one of
  two allowed end-to-end paths never take the forbidden "zigzag".
"""

import pytest

from repro.core.builder import if_, inf, matches, minimize, path
from repro.core.compiler import compile_policy
from repro.core.policies import MU
from repro.protocol import ContraSystem
from repro.simulator import Flow, Network, StatsCollector
from repro.topology.graph import Topology


def square_with_diagonal():
    """S, A, B, D with links S-A, A-D, S-B, B-D, S-D, A-B and hosts at S and D."""
    topo = Topology("figure4")
    for switch in ("S", "A", "B", "D"):
        topo.add_switch(switch)
    for a, b in (("S", "A"), ("A", "D"), ("S", "B"), ("B", "D"), ("S", "D"), ("A", "B")):
        topo.add_link(a, b, capacity=50.0)
    for switch in ("S", "D"):
        host = f"h{switch}"
        topo.add_host(host, switch)
        topo.add_link(host, switch, capacity=50.0)
    return topo


def double_diamond():
    """The Figure 8(a) topology: S-C-E-F-D (upper) and S-A-E-B-D (lower) share E."""
    topo = Topology("figure8a")
    for switch in ("S", "A", "B", "C", "D", "E", "F"):
        topo.add_switch(switch)
    for a, b in (("S", "C"), ("C", "E"), ("E", "F"), ("F", "D"),
                 ("S", "A"), ("A", "E"), ("E", "B"), ("B", "D")):
        topo.add_link(a, b, capacity=50.0)
    for switch in ("S", "D"):
        host = f"h{switch}"
        topo.add_host(host, switch)
        topo.add_link(host, switch, capacity=50.0)
    return topo


def run_with_oscillating_metrics(topology, policy, flows, duration=30.0,
                                 use_versioning=True, oscillate_links=(),
                                 period=1.7, probe_period=0.25):
    """Run Contra while flipping the utilization of selected links periodically.

    The oscillation recreates the "metrics changed while probes were in
    flight" conditions of Figure 4 without having to time individual probes.
    """
    compiled = compile_policy(policy, topology)
    system = ContraSystem(compiled, probe_period=probe_period,
                          use_versioning=use_versioning)
    stats = StatsCollector(record_paths=True)
    network = Network(topology, system, stats=stats)
    network.schedule_flows(flows)

    state = {"high": False}

    def flip():
        state["high"] = not state["high"]
        for (a, b) in oscillate_links:
            value = 0.9 if state["high"] else 0.05
            link = network.link(a, b)
            link.metric_values = (  # type: ignore[method-assign]
                lambda v=value, lat=link.latency: {"util": v, "lat": lat, "len": 1.0})
        network.sim.schedule(period, flip)

    network.sim.schedule(0.0, flip)
    network.run(duration)
    return network, stats


class TestFigure4LoopAvoidance:
    def make_flows(self):
        return [Flow("hS", "hD", size_packets=60, start_time=1.0 + 0.5 * i)
                for i in range(10)]

    def test_versioned_probes_avoid_persistent_loops(self):
        topology = square_with_diagonal()
        network, stats = run_with_oscillating_metrics(
            topology, MU(), self.make_flows(),
            oscillate_links=[("A", "D"), ("D", "A"), ("S", "D"), ("D", "S")])
        assert stats.completion_ratio() == 1.0
        # Delivered paths never contain a repeated switch (no persistent loop
        # survived until delivery), and the TTL-based detector rarely fires.
        for _flow, trace in stats.delivered_paths:
            assert len(trace) == len(set(trace)), f"looped path {trace}"
        assert stats.loop_fraction() < 0.05

    def test_flows_complete_even_without_versioning_on_small_topology(self):
        """The unversioned ablation still delivers traffic here; the point of
        versioning is the *guarantee*, exercised statistically above."""
        topology = square_with_diagonal()
        network, stats = run_with_oscillating_metrics(
            topology, MU(), self.make_flows(), use_versioning=False,
            oscillate_links=[("A", "D"), ("D", "A")])
        assert stats.completion_ratio() > 0.8


class TestFigure4ConstrainedRouting:
    def test_traffic_never_traverses_b_then_a(self):
        """§3 challenge #2: the policy forbids ... B A ... subpaths."""
        topology = square_with_diagonal()
        policy = minimize(if_(matches(".* B A .*"), inf, path.util))
        flows = [Flow("hS", "hD", size_packets=40, start_time=1.0 + 0.8 * i)
                 for i in range(8)]
        network, stats = run_with_oscillating_metrics(
            topology, policy, flows,
            oscillate_links=[("B", "D"), ("D", "B"), ("S", "D"), ("D", "S")])
        assert stats.completion_ratio() == 1.0
        for _flow, trace in stats.delivered_paths:
            assert not any(trace[i] == "B" and trace[i + 1] == "A"
                           for i in range(len(trace) - 1)), trace

    def test_waypoint_policy_always_visits_waypoint(self):
        topology = square_with_diagonal()
        policy = minimize(if_(matches(".* A .*"), path.util, inf))
        flows = [Flow("hS", "hD", size_packets=30, start_time=1.0 + 1.0 * i)
                 for i in range(6)]
        network, stats = run_with_oscillating_metrics(
            topology, policy, flows,
            oscillate_links=[("A", "D"), ("D", "A")])
        assert stats.completion_ratio() == 1.0
        for _flow, trace in stats.delivered_paths:
            assert "A" in trace


class TestFigure8PolicyAwareFlowlets:
    def test_zigzag_path_never_used(self):
        """Only the upper (S-C-E-F-D) and lower (S-A-E-B-D) paths are allowed;
        the zigzag S-A-E-F-D / S-C-E-B-D must never appear even as preferences
        flip mid-flowlet (§5.3)."""
        topology = double_diamond()
        # The forward alternatives from the paper plus their reverses so that
        # ACK traffic (D back to S) is also routable.
        policy = minimize(if_(matches("S C E F D + S A E B D + D F E C S + D B E A S"),
                              path.util, inf))
        flows = [Flow("hS", "hD", size_packets=50, start_time=1.0 + 0.6 * i)
                 for i in range(10)]
        network, stats = run_with_oscillating_metrics(
            topology, policy, flows,
            oscillate_links=[("C", "E"), ("E", "C"), ("A", "E"), ("E", "A")],
            period=1.3)
        assert stats.completion_ratio() == 1.0
        allowed = {("S", "C", "E", "F", "D"), ("S", "A", "E", "B", "D")}
        for _flow, trace in stats.delivered_paths:
            assert tuple(trace) in allowed, f"policy violation: {trace}"

    def test_both_allowed_paths_are_exercised(self):
        """With oscillating utilizations both compliant paths carry traffic."""
        topology = double_diamond()
        # The forward alternatives from the paper plus their reverses so that
        # ACK traffic (D back to S) is also routable.
        policy = minimize(if_(matches("S C E F D + S A E B D + D F E C S + D B E A S"),
                              path.util, inf))
        flows = [Flow("hS", "hD", size_packets=30, start_time=1.0 + 0.5 * i)
                 for i in range(14)]
        network, stats = run_with_oscillating_metrics(
            topology, policy, flows,
            oscillate_links=[("C", "E"), ("E", "C"), ("A", "E"), ("E", "A")],
            period=1.1)
        used = {tuple(trace) for _flow, trace in stats.delivered_paths}
        assert len(used) == 2
