"""Integration tests for sharded, resumable sweep execution.

The contracts under test (see ARCHITECTURE.md "Execution backends and the
results store"):

* :func:`spec_hash` is a pure, stable function of the spec — identical
  across processes and for both accepted spellings of an event schedule;
* the results store round-trips every :class:`RunResult` field exactly and
  unions shard files, refusing conflicting records;
* the union of ``n`` shard runs is byte-identical to an unsharded run on
  every summary key, and merged scenario outcomes (text and payload) are
  byte-identical to unsharded ones;
* resume skips store-complete points and yields identical output.
"""

import json
import os
import subprocess
import sys

import pytest

from repro.exceptions import ExperimentError
from repro.experiments.config import ExperimentConfig
from repro.experiments.registry import (
    GridScenario,
    SCENARIOS,
    merge_scenario,
    run_scenario,
    run_scenario_shard,
)
from repro.experiments.results import (
    ResultsStore,
    ShardedBackend,
    collect_results,
    decode_result,
    encode_result,
    parse_shard,
)
from repro.experiments.runner import (
    LinkEvent,
    RunResult,
    ScenarioSpec,
    TopologySpec,
    canonical_spec,
    run_grid,
    spec_hash,
)

TINY = ExperimentConfig(workload_duration=1.5, run_duration=20.0, loads=(0.4,),
                        websearch_scale=0.05, cache_scale=0.2)


def tiny_topology():
    return TopologySpec("fattree", k=4, capacity=TINY.host_capacity,
                        oversubscription=TINY.oversubscription)


def tiny_specs(systems=("ecmp", "contra")):
    return [
        ScenarioSpec(name=f"shard-test:{system}", system=system,
                     topology=tiny_topology(), config=TINY,
                     workload="web_search", load=0.4, seed=TINY.seed,
                     stop_after_completion=True)
        for system in systems
    ]


class TestSpecHash:
    def test_hash_is_pure_and_deterministic(self):
        spec = tiny_specs()[0]
        assert spec_hash(spec) == spec_hash(spec)
        rebuilt = tiny_specs()[0]
        assert spec_hash(rebuilt) == spec_hash(spec)

    def test_hash_is_stable_across_processes(self):
        """The store key must not depend on process state (PYTHONHASHSEED…)."""
        program = (
            "from repro.experiments.config import ExperimentConfig\n"
            "from repro.experiments.runner import ScenarioSpec, TopologySpec, spec_hash\n"
            "c = ExperimentConfig(workload_duration=1.5, run_duration=20.0,\n"
            "                     loads=(0.4,), websearch_scale=0.05, cache_scale=0.2)\n"
            "t = TopologySpec('fattree', k=4, capacity=c.host_capacity,\n"
            "                 oversubscription=c.oversubscription)\n"
            "s = ScenarioSpec(name='shard-test:ecmp', system='ecmp', topology=t,\n"
            "                 config=c, workload='web_search', load=0.4, seed=c.seed,\n"
            "                 stop_after_completion=True)\n"
            "print(spec_hash(s))\n"
        )
        import repro
        src_dir = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
        env = dict(os.environ, PYTHONHASHSEED="12345")
        env["PYTHONPATH"] = os.pathsep.join(
            [p for p in (src_dir, env.get("PYTHONPATH", "")) if p])
        output = subprocess.run([sys.executable, "-c", program], env=env,
                                capture_output=True, text=True, check=True)
        assert output.stdout.strip() == spec_hash(tiny_specs()[0])

    def test_plain_tuple_events_hash_like_linkevents(self):
        base = tiny_specs()[0]
        as_tuples = ScenarioSpec(**{**base.__dict__,
                                    "events": ((5.0, "edge0", "agg0", "fail"),)})
        as_events = ScenarioSpec(**{**base.__dict__,
                                    "events": (LinkEvent(5.0, "edge0", "agg0", "fail"),)})
        assert spec_hash(as_tuples) == spec_hash(as_events)
        assert spec_hash(as_tuples) != spec_hash(base)

    def test_any_field_change_changes_the_hash(self):
        base = tiny_specs()[0]
        for override in ({"load": 0.6}, {"seed": 2}, {"system": "hula"},
                         {"config": ExperimentConfig(**{
                             **TINY.__dict__, "probe_period": 0.512})}):
            changed = ScenarioSpec(**{**base.__dict__, **override})
            assert spec_hash(changed) != spec_hash(base)

    def test_canonical_spec_is_plain_json_data(self):
        canonical = canonical_spec(tiny_specs()[0])
        json.dumps(canonical)  # must not raise
        assert canonical["topology"]["family"] == "fattree"
        assert canonical["config"]["loads"] == (0.4,)

    def test_sanitize_stays_out_of_the_spec_hash(self, monkeypatch):
        """The sanitizer plane is an *observer*, not part of the experiment:
        `--sanitize` / CONTRA_SANITIZE must never perturb store keys, or a
        sanitized sweep could not resume an unsanitized one."""
        import dataclasses

        from repro.experiments.runner import _V3_FIELDS

        spec = tiny_specs()[0]
        field_names = {f.name for f in dataclasses.fields(ScenarioSpec)}
        assert "sanitize" not in field_names
        # Canonicalization covers exactly the spec fields — nothing ambient.
        # Fields added after hash v2 are omitted at their defaults so that
        # pre-existing store keys stay resumable (see test_spec_hash_is_pinned).
        assert set(canonical_spec(spec)) == field_names - set(_V3_FIELDS)
        fluid = ScenarioSpec(**{**spec.__dict__, "flow_model": "fluid"})
        assert set(canonical_spec(fluid)) == (field_names - set(_V3_FIELDS)) | {"flow_model"}
        monkeypatch.delenv("CONTRA_SANITIZE", raising=False)
        base = spec_hash(spec)
        monkeypatch.setenv("CONTRA_SANITIZE", "1")
        assert spec_hash(spec) == base

    def test_spec_field_set_is_pinned(self):
        """Adding a ScenarioSpec field is a compatibility event: it must go
        into ``_V3_FIELDS`` (or a future version set) with its default, or
        every existing store key silently changes.  This pin forces that
        decision to be explicit."""
        import dataclasses

        from repro.experiments.runner import _V3_FIELDS

        field_names = [f.name for f in dataclasses.fields(ScenarioSpec)]
        assert field_names == [
            "name", "system", "topology", "config", "policy", "workload",
            "load", "seed", "transport", "ack_every", "traffic",
            "workload_host_rate", "workload_scale", "senders", "receivers",
            "pair_senders_receivers", "incast_fanin", "incast_receiver",
            "stream_rate", "stream_start", "streams_per_pair", "events",
            "fail_agg_core_link", "failed_link", "failure_time",
            "probe_period", "flowlet_timeout", "use_versioning",
            "respect_compiled_probe_period", "record_paths",
            "stop_after_completion", "run_duration", "cdf_points",
            "collect_throughput", "flow_model", "flow_sketch",
            "fct_percentiles",
        ]
        assert _V3_FIELDS == {"flow_model": "packet", "flow_sketch": False,
                              "fct_percentiles": ()}

    def test_spec_hash_is_pinned_for_packet_defaults(self):
        """Regression pin: a spec that leaves every post-v2 field at its
        default must hash exactly as it did before those fields existed, so
        packet-plane sweeps resume against stores written by older builds."""
        spec = tiny_specs()[0]
        pinned = ScenarioSpec(name="pin:ecmp", system="ecmp",
                              topology=TopologySpec("fattree", k=4, capacity=100.0,
                                                    oversubscription=4.0),
                              config=ExperimentConfig(), workload="web_search",
                              load=0.4, seed=1, stop_after_completion=True)
        assert spec_hash(pinned) == (
            "7c7dfd526b7ce05af257b91056d5a52aca3d2e81ec8f80b644be6f6d5ea9ba64")
        # Any v3 field moved off its default must change the hash…
        assert spec_hash(ScenarioSpec(**{**spec.__dict__, "flow_model": "fluid"})) \
            != spec_hash(spec)
        assert spec_hash(ScenarioSpec(**{**spec.__dict__, "flow_sketch": True})) \
            != spec_hash(spec)
        assert spec_hash(ScenarioSpec(**{**spec.__dict__,
                                         "fct_percentiles": (50.0,)})) \
            != spec_hash(spec)
        # …and the three non-default hashes must be distinct from each other.
        hashes = {spec_hash(ScenarioSpec(**{**spec.__dict__, **override}))
                  for override in ({"flow_model": "fluid"}, {"flow_sketch": True},
                                   {"fct_percentiles": (50.0,)})}
        assert len(hashes) == 3


class TestResultsStore:
    def _result(self):
        return RunResult(name="r", system="ecmp", workload="web_search",
                         load=0.4, seed=1,
                         summary={"avg_fct_ms": 1.25, "flows": 7},
                         queue_cdf={0.5: 1.0, 0.99: 30.0},
                         throughput=[(1.0, 96.0), (2.0, 95.5)])

    def test_encode_decode_roundtrip_is_exact(self):
        result = self._result()
        decoded = decode_result(json.loads(json.dumps(encode_result(result))))
        assert decoded == result
        assert isinstance(decoded.throughput[0], tuple)
        assert 0.99 in decoded.queue_cdf

    def test_codec_covers_every_runresult_field(self):
        """Guard against a future RunResult field silently vanishing from
        sharded/resumed runs: the store codec must name every field."""
        import dataclasses
        field_names = {field.name for field in dataclasses.fields(RunResult)}
        assert set(encode_result(self._result())) == field_names

    def test_record_then_load_by_hash(self, tmp_path):
        spec = tiny_specs()[0]
        store = ResultsStore(tmp_path)
        store.record(spec, self._result())
        assert store.load()[spec_hash(spec)] == self._result()

    def test_load_unions_shard_files(self, tmp_path):
        ecmp, contra = tiny_specs()
        ResultsStore(tmp_path, 0, 2).record(ecmp, self._result())
        ResultsStore(tmp_path, 1, 2).record(contra, self._result())
        assert set(ResultsStore(tmp_path).load()) == {spec_hash(ecmp),
                                                      spec_hash(contra)}

    def test_duplicate_identical_records_are_fine(self, tmp_path):
        spec = tiny_specs()[0]
        ResultsStore(tmp_path, 0, 2).record(spec, self._result())
        ResultsStore(tmp_path, 1, 2).record(spec, self._result())
        assert len(ResultsStore(tmp_path).load()) == 1

    def test_conflicting_records_raise(self, tmp_path):
        spec = tiny_specs()[0]
        ResultsStore(tmp_path, 0, 2).record(spec, self._result())
        other = RunResult(name="r", system="ecmp", workload="web_search",
                          load=0.4, seed=1, summary={"avg_fct_ms": 9.99})
        ResultsStore(tmp_path, 1, 2).record(spec, other)
        with pytest.raises(ExperimentError, match="conflicting"):
            ResultsStore(tmp_path).load()

    def test_corrupt_interior_line_raises_with_location(self, tmp_path):
        spec = tiny_specs()[0]
        store = ResultsStore(tmp_path)
        store.path.write_text("not json\n")
        store.record(spec, self._result())
        with pytest.raises(ExperimentError, match="corrupt"):
            store.load()

    def test_torn_final_line_is_tolerated(self, tmp_path):
        """A run killed mid-append leaves a partial last line; the store
        must skip it (the point re-executes) rather than brick resume."""
        spec = tiny_specs()[0]
        store = ResultsStore(tmp_path)
        store.record(spec, self._result())
        with store.path.open("a") as handle:
            handle.write('{"spec_hash": "abc", "result": {"name"')
        loaded = store.load()
        assert set(loaded) == {spec_hash(spec)}
        assert store.total_wall_s() >= 0.0

    def test_resume_after_torn_line_repairs_then_appends_cleanly(self, tmp_path):
        """Re-opening the shard's own file truncates the torn tail, so the
        resumed point's record is not glued onto the partial line."""
        ecmp, contra = tiny_specs()
        store = ResultsStore(tmp_path)
        store.record(ecmp, self._result())
        with store.path.open("a") as handle:
            handle.write('{"spec_hash": "abc", "result": {"name"')
        resumed = ResultsStore(tmp_path)       # same shard file: repairs tail
        resumed.record(contra, self._result())
        loaded = ResultsStore(tmp_path).load()
        assert set(loaded) == {spec_hash(ecmp), spec_hash(contra)}

    def test_nan_summaries_do_not_fake_a_conflict(self, tmp_path):
        """Streams-only runs carry NaN summary values; byte-identical
        duplicate records must still count as duplicates (NaN != NaN under
        dict equality, so the conflict check compares serialized forms)."""
        spec = tiny_specs()[0]
        nan_result = RunResult(name="r", system="contra", workload="",
                               load=0.0, seed=1,
                               summary={"avg_fct_ms": float("nan"), "flows": 0})
        ResultsStore(tmp_path, 0, 2).record(spec, nan_result)
        ResultsStore(tmp_path, 1, 3).record(spec, nan_result)
        loaded = ResultsStore(tmp_path).load()
        assert set(loaded) == {spec_hash(spec)}

    def test_parse_shard(self):
        assert parse_shard("0/2") == (0, 2)
        assert parse_shard("3/4") == (3, 4)
        for bad in ("2/2", "-1/2", "a/b", "1", "1/0"):
            with pytest.raises(ExperimentError):
                parse_shard(bad)

    def test_load_metas_sorts_numerically_beyond_ten_shards(self, tmp_path):
        """Regression: ``sorted(glob)`` is lexicographic, so shard10of12
        sorted before shard2of12 — metas must come back in numeric shard
        order once a sweep uses ten or more shards."""
        count = 12
        for index in [7, 10, 0, 11, 2, 5, 1, 9, 3, 8, 6, 4]:   # write shuffled
            ResultsStore(tmp_path, index, count).write_meta(
                "meta-order", wall_s=1.0, total=count, assigned=1,
                executed=1, skipped=0)
        metas = ResultsStore(tmp_path).load_metas()
        assert [meta["shard_index"] for meta in metas] == list(range(count))

    def test_load_metas_orders_by_count_then_index(self, tmp_path):
        """Metas from different shard layouts group by layout, not filename."""
        for index, count in [(1, 10), (0, 2), (9, 10), (1, 2)]:
            ResultsStore(tmp_path, index, count).write_meta(
                "meta-order", wall_s=1.0, total=1, assigned=1,
                executed=1, skipped=0)
        metas = ResultsStore(tmp_path).load_metas()
        assert [(meta["shard_count"], meta["shard_index"])
                for meta in metas] == [(2, 0), (2, 1), (10, 1), (10, 9)]

    def test_explicit_filename_must_stay_in_the_union_glob(self, tmp_path):
        spec = tiny_specs()[0]
        store = ResultsStore(tmp_path, filename="results-worker-w0.jsonl")
        store.record(spec, self._result(), owner="w0")
        loaded = ResultsStore(tmp_path).load()
        assert set(loaded) == {spec_hash(spec)}
        with pytest.raises(ExperimentError, match="results-"):
            ResultsStore(tmp_path, filename="worker-w0.jsonl")


class TestShardedExecution:
    def test_union_of_shards_equals_unsharded_on_every_summary_key(self, tmp_path):
        specs = tiny_specs(("ecmp", "contra", "hula"))
        unsharded = run_grid(specs, processes=1)
        for index in range(2):
            run_grid(specs, backend=ShardedBackend(ResultsStore(tmp_path, index, 2)))
        merged = collect_results(specs, ResultsStore(tmp_path))
        assert [r.name for r in merged] == [s.name for s in specs]
        for grid_result, merged_result in zip(unsharded, merged):
            assert merged_result.summary == grid_result.summary
            assert merged_result == grid_result

    def test_shard_assignment_is_round_robin_and_disjoint(self, tmp_path):
        specs = tiny_specs(("ecmp", "contra", "hula"))
        backends = [ShardedBackend(ResultsStore(tmp_path, index, 2))
                    for index in range(2)]
        first = backends[0].run(specs)
        second = backends[1].run(specs)
        assert [r.name for r in first] == [specs[0].name, specs[2].name]
        assert [r.name for r in second] == [specs[1].name]
        assert backends[0].assigned == 2 and backends[1].assigned == 1

    def test_resume_skips_completed_points(self, tmp_path):
        specs = tiny_specs()
        first_backend = ShardedBackend(ResultsStore(tmp_path))
        first = first_backend.run(specs)
        assert first_backend.executed == 2
        second_backend = ShardedBackend(ResultsStore(tmp_path))
        second = second_backend.run(specs)
        assert second_backend.executed == 0
        assert second_backend.skipped == 2
        assert second == first

    def test_pool_inner_records_in_worker_point_walls(self, tmp_path):
        """With a pool inner, per-point wall_s is measured in the worker —
        every record carries a positive compute cost, not arrival gaps
        (which would be ~0 for all but the first point of a chunk)."""
        from repro.experiments.runner import PoolBackend
        specs = tiny_specs(("ecmp", "hula", "contra"))
        store = ResultsStore(tmp_path)
        ShardedBackend(store, inner=PoolBackend(2)).run(specs)
        walls = [record.get("point_wall_s")
                 for _, _, record in store._records()]
        assert len(walls) == 3
        assert all(wall is not None and wall > 0 for wall in walls)

    def test_interrupted_shard_persists_completed_points(self, tmp_path):
        """Records stream into the store per point, so a crash loses only
        the in-flight point and resume picks up from the last finished one."""
        from repro.experiments.runner import SerialBackend

        class DiesAfterOne(SerialBackend):
            def run_iter_timed(self, inner_specs):
                results = super().run_iter_timed(inner_specs)
                yield next(results)
                raise KeyboardInterrupt("simulated crash")

        specs = tiny_specs(("ecmp", "hula", "contra"))
        with pytest.raises(KeyboardInterrupt):
            ShardedBackend(ResultsStore(tmp_path), inner=DiesAfterOne()).run(specs)
        assert len(ResultsStore(tmp_path).load()) == 1
        backend = ShardedBackend(ResultsStore(tmp_path))
        backend.run(specs)
        assert backend.skipped == 1 and backend.executed == 2

    def test_partial_store_merge_raises_naming_missing(self, tmp_path):
        specs = tiny_specs(("ecmp", "contra", "hula"))
        run_grid(specs, backend=ShardedBackend(ResultsStore(tmp_path, 0, 2)))
        with pytest.raises(ExperimentError, match="missing"):
            collect_results(specs, ResultsStore(tmp_path))


MICRO = ExperimentConfig(workload_duration=1.5, run_duration=20.0, loads=(0.4,),
                         websearch_scale=0.05, cache_scale=0.2)


class TestScenarioShardingByteIdentity:
    def test_fig11_shards_merge_byte_identical_to_unsharded(self, tmp_path):
        """The acceptance contract: shard 0/2 + shard 1/2 + merge == unsharded."""
        unsharded = run_scenario("fig11", MICRO)
        for index in range(2):
            outcome = run_scenario_shard("fig11", MICRO, tmp_path, index, 2)
            assert outcome.executed == 3 and outcome.skipped == 0
        merged = merge_scenario("fig11", MICRO, tmp_path)
        assert merged.text == unsharded.text
        assert json.dumps(merged.payload, sort_keys=True) == \
            json.dumps(unsharded.payload, sort_keys=True)

    def test_resumed_scenario_run_is_identical(self, tmp_path):
        first = run_scenario("fig13", TINY, results_dir=str(tmp_path))
        resumed = run_scenario("fig13", TINY, results_dir=str(tmp_path))
        assert resumed.text == first.text
        assert json.dumps(resumed.payload, sort_keys=True) == \
            json.dumps(first.payload, sort_keys=True)

    def test_shard_resume_reports_skips(self, tmp_path):
        first = run_scenario_shard("fig13", TINY, tmp_path, 0, 2)
        again = run_scenario_shard("fig13", TINY, tmp_path, 0, 2)
        assert first.executed == 1
        assert again.executed == 0 and again.skipped == 1

    def test_legacy_scenarios_reject_results_dir(self, tmp_path):
        with pytest.raises(ExperimentError, match="not a single spec grid"):
            run_scenario("ablations", TINY, results_dir=str(tmp_path))
        with pytest.raises(ExperimentError, match="not a single spec grid"):
            run_scenario_shard("fig9-10", TINY, tmp_path, 0, 2)

    def test_merge_on_empty_store_raises(self, tmp_path):
        with pytest.raises(ExperimentError, match="missing"):
            merge_scenario("fig11", MICRO, tmp_path)

    def test_every_single_grid_scenario_is_shardable(self):
        grid_scenarios = {name for name, entry in SCENARIOS.items()
                          if isinstance(entry, GridScenario)}
        assert {"fig11", "fig11-k8", "fig11-k16", "fig12", "fig13", "fig14",
                "fig15", "fig16", "incast", "multi-failure", "recovery-sweep",
                "recovery-curve", "transport-sensitivity",
                "flow-size-sensitivity"} <= grid_scenarios


class TestCliSharding:
    def test_shard_requires_results_dir(self):
        from repro import cli
        with pytest.raises(SystemExit, match="results-dir"):
            cli.main(["run-grid", "fig11", "--shard", "0/2"])

    def test_bad_shard_selector_rejected(self, tmp_path):
        from repro import cli
        with pytest.raises(SystemExit, match="shard"):
            cli.main(["run-grid", "fig11", "--shard", "2/2",
                      "--results-dir", str(tmp_path)])

    def test_json_with_partial_shard_rejected(self, tmp_path):
        from repro import cli
        with pytest.raises(SystemExit, match="merge-results"):
            cli.main(["run-grid", "fig11", "--shard", "0/2",
                      "--results-dir", str(tmp_path),
                      "--json", str(tmp_path / "out.json")])

    def test_results_dir_rejected_for_legacy_scenario(self, tmp_path):
        from repro import cli
        with pytest.raises(SystemExit, match="shardable"):
            cli.main(["run-grid", "fig9-10", "--results-dir", str(tmp_path)])

    def test_merge_results_requires_existing_dir(self, tmp_path):
        from repro import cli
        with pytest.raises(SystemExit, match="does not exist"):
            cli.main(["merge-results", "fig11",
                      "--results-dir", str(tmp_path / "nope")])

    def test_cli_shard_merge_end_to_end(self, tmp_path, capsys, monkeypatch):
        """Drive the full CLI path on a tiny grid via a patched registry entry."""
        from repro import cli
        from repro.experiments import registry

        def tiny_build(config):
            return tiny_specs()

        def tiny_finish(config, results):
            return registry.ScenarioOutcome(
                "fig13", json.dumps([r.summary for r in results], sort_keys=True),
                [r.summary for r in results])

        monkeypatch.setitem(registry.SCENARIOS, "fig13",
                            GridScenario(tiny_build, tiny_finish))
        store_dir = tmp_path / "store"
        assert cli.main(["run-grid", "fig13", "--shard", "0/2",
                         "--results-dir", str(store_dir)]) == 0
        assert cli.main(["run-grid", "fig13", "--shard", "1/2",
                         "--results-dir", str(store_dir)]) == 0
        capsys.readouterr()
        merged_json = tmp_path / "merged.json"
        bench = tmp_path / "BENCH_fig13_sharded.json"
        assert cli.main(["merge-results", "fig13",
                         "--results-dir", str(store_dir),
                         "--json", str(merged_json),
                         "--bench-artifact", str(bench)]) == 0
        merged_text = capsys.readouterr().out.splitlines()[0]

        unsharded_json = tmp_path / "unsharded.json"
        assert cli.main(["run-grid", "fig13", "--json", str(unsharded_json)]) == 0
        unsharded_text = capsys.readouterr().out.splitlines()[0]

        assert merged_text == unsharded_text
        assert merged_json.read_bytes() == unsharded_json.read_bytes()
        artifact = json.loads(bench.read_text())
        assert artifact["benchmark"] == "fig13_sharded"
        assert artifact["shards"] == 2
        assert artifact["wall_s"] > 0

        # A later 0/1 pass over the same store skips everything, writing no
        # new records — the wall-clock sum (one addend per actual execution)
        # is unchanged by the extra layout.
        assert cli.main(["run-grid", "fig13", "--shard", "0/1",
                         "--results-dir", str(store_dir)]) == 0
        shard_line = capsys.readouterr().out.splitlines()[0]
        assert "0 executed, 2 already complete" in shard_line
        assert cli.main(["merge-results", "fig13",
                         "--results-dir", str(store_dir),
                         "--bench-artifact", str(bench)]) == 0
        assert json.loads(bench.read_text())["wall_s"] == artifact["wall_s"]


@pytest.mark.slow
class TestFig11K16:
    def test_fig11_k16_runs_to_completion_via_shards(self, tmp_path):
        """The k=16 fabric (320 switches, 1024 hosts) as two merged shards.

        The micro config coarsens the probe period and shortens the run so
        the point of the test — the sweep *executes and merges* at k=16 —
        stays affordable; fidelity at k=16 is the full preset's job.
        """
        micro = ExperimentConfig(workload_duration=0.3, run_duration=5.0,
                                 loads=(0.2,), websearch_scale=0.03,
                                 cache_scale=0.1, probe_period=2.048,
                                 flowlet_timeout=4.0, warmup=2.5)
        for index in range(2):
            outcome = run_scenario_shard("fig11-k16", micro, tmp_path, index, 2)
            assert outcome.assigned == 3 and outcome.executed == 3
        merged = merge_scenario("fig11-k16", micro, tmp_path)
        assert "k=16" in merged.text
        # 2 workloads x 1 load x 3 systems, every point completed flows.
        assert len(merged.payload) == 6
        for row in merged.payload:
            assert row["completed"] > 0
