"""End-to-end integration tests: full simulations of every routing system.

These tests exercise the whole stack — workload generation, transport,
switching, probes, flowlets, failures — on the topologies the evaluation uses,
with small durations so the suite stays fast.
"""

import pytest

from repro.baselines import EcmpSystem, HulaSystem, ShortestPathSystem, SpainSystem
from repro.core.compiler import compile_policy
from repro.experiments.config import ExperimentConfig
from repro.experiments.fct import default_failed_link
from repro.experiments.runner import build_routing_system, datacenter_policy, run_simulation
from repro.protocol import ContraSystem
from repro.simulator import Network, StatsCollector
from repro.topology import abilene, fattree, leafspine
from repro.workloads import (
    cache_distribution,
    generate_workload,
    random_pairs,
    uniform_distribution,
    web_search_distribution,
)

CONFIG = ExperimentConfig(workload_duration=8.0, run_duration=60.0, loads=(0.5,))


def fattree_workload(load=0.5, seed=0):
    topo = fattree(CONFIG.fattree_k, capacity=CONFIG.host_capacity,
                   oversubscription=CONFIG.oversubscription)
    spec = generate_workload(topo, web_search_distribution(0.05), load=load,
                             duration=CONFIG.workload_duration,
                             host_capacity=CONFIG.host_capacity, seed=seed)
    return topo, spec


class TestAllSystemsComplete:
    @pytest.mark.parametrize("system_name", ["ecmp", "hula", "contra"])
    def test_fattree_systems_deliver_all_flows(self, system_name):
        topo, spec = fattree_workload()
        system = build_routing_system(system_name, topo, CONFIG)
        result = run_simulation(topo, system, spec.flows, CONFIG,
                                system_name=system_name, load=0.5, workload_name="web_search")
        assert result.summary["completion_ratio"] > 0.95
        assert result.summary["loop_fraction"] == 0.0 or result.summary["loop_fraction"] < 0.01

    @pytest.mark.parametrize("system_name", ["shortest-path", "spain", "contra"])
    def test_abilene_systems_deliver_all_flows(self, system_name):
        topo = abilene(capacity=CONFIG.abilene_capacity, hosts_per_switch=1)
        senders, receivers = random_pairs(topo, 4, seed=1)
        spec = generate_workload(topo, cache_distribution(0.5), load=0.5,
                                 duration=8.0, host_capacity=CONFIG.abilene_capacity,
                                 senders=senders, receivers=receivers,
                                 pair_senders_receivers=True, seed=1)
        system = build_routing_system(system_name, topo, CONFIG)
        result = run_simulation(topo, system, spec.flows, CONFIG, run_duration=80.0,
                                system_name=system_name, load=0.5, workload_name="cache")
        assert result.summary["completion_ratio"] > 0.95

    def test_load_balancers_beat_ecmp_under_congestion(self):
        """The Figure 11 headline: at high load Contra and Hula outperform ECMP."""
        topo, spec = fattree_workload(load=0.9, seed=3)
        results = {}
        for name in ("ecmp", "contra", "hula"):
            system = build_routing_system(name, topo, CONFIG)
            results[name] = run_simulation(topo, system, spec.flows, CONFIG,
                                           system_name=name).summary
        assert results["contra"]["avg_fct_ms"] < results["ecmp"]["avg_fct_ms"]
        assert results["hula"]["avg_fct_ms"] < results["ecmp"]["avg_fct_ms"]

    def test_contra_close_to_hula(self):
        """§6.3: Hula outperforms Contra only slightly on its home turf."""
        topo, spec = fattree_workload(load=0.7, seed=5)
        results = {}
        for name in ("contra", "hula"):
            system = build_routing_system(name, topo, CONFIG)
            results[name] = run_simulation(topo, system, spec.flows, CONFIG,
                                           system_name=name).summary
        assert results["contra"]["avg_fct_ms"] <= 1.5 * results["hula"]["avg_fct_ms"]


class TestOverheadAccounting:
    def test_contra_adds_probe_and_tag_bytes(self):
        topo, spec = fattree_workload(load=0.4)
        contra = build_routing_system("contra", topo, CONFIG)
        ecmp = build_routing_system("ecmp", topo, CONFIG)
        contra_result = run_simulation(topo, contra, spec.flows, CONFIG, system_name="contra")
        ecmp_result = run_simulation(topo, ecmp, spec.flows, CONFIG, system_name="ecmp")
        assert contra_result.stats.probe_bytes > 0
        assert contra_result.stats.tag_overhead_bytes > 0
        assert ecmp_result.stats.probe_bytes == 0
        assert contra_result.stats.data_bytes == pytest.approx(
            ecmp_result.stats.data_bytes, rel=0.05)

    def test_hula_probe_overhead_smaller_than_contra(self):
        """§6.3/§6.5: Contra probes more broadly than Hula (generality cost)."""
        topo, spec = fattree_workload(load=0.4)
        contra = run_simulation(topo, build_routing_system("contra", topo, CONFIG),
                                spec.flows, CONFIG, system_name="contra")
        hula = run_simulation(topo, build_routing_system("hula", topo, CONFIG),
                              spec.flows, CONFIG, system_name="hula")
        assert hula.stats.probe_bytes < contra.stats.probe_bytes


class TestFailureHandling:
    def test_asymmetric_fattree_contra_keeps_delivering(self):
        topo, spec = fattree_workload(load=0.6, seed=2)
        failed = default_failed_link(topo)
        contra = build_routing_system("contra", topo, CONFIG)
        result = run_simulation(topo, contra, spec.flows, CONFIG, failed_link=failed,
                                system_name="contra")
        assert result.summary["completion_ratio"] > 0.95

    def test_asymmetric_fattree_hurts_ecmp_more_than_contra(self):
        topo, spec = fattree_workload(load=0.8, seed=2)
        failed = default_failed_link(topo)
        summaries = {}
        for name in ("ecmp", "contra"):
            system = build_routing_system(name, topo, CONFIG)
            summaries[name] = run_simulation(topo, system, spec.flows, CONFIG,
                                             failed_link=failed, system_name=name).summary
        assert summaries["contra"]["completion_ratio"] >= summaries["ecmp"]["completion_ratio"]
        assert summaries["ecmp"]["drops"] > summaries["contra"]["drops"]

    def test_mid_run_failure_triggers_detection_and_reroute(self):
        topo = leafspine(2, 2, hosts_per_leaf=2, capacity=50.0)
        compiled = compile_policy(datacenter_policy(), topo)
        system = ContraSystem(compiled, probe_period=0.25, failure_periods=3)
        network = Network(topo, system, stats=StatsCollector(record_paths=True))
        spec = generate_workload(topo, uniform_distribution(5, 20), load=0.4,
                                 duration=15.0, host_capacity=50.0, seed=4)
        network.schedule_flows(spec.flows)
        network.fail_link("spine0", "leaf1", at_time=5.0)
        stats = network.run(60.0)
        assert stats.failure_detections >= 1
        assert stats.completion_ratio() > 0.9
        # After the failure, delivered inter-leaf paths avoid spine0->leaf1.
        late_paths = [trace for _flow, trace in stats.delivered_paths
                      if "leaf0" in trace and "leaf1" in trace]
        assert late_paths, "no inter-leaf traffic delivered"
