"""Array probe plane: end-to-end byte-identity and the numpy-absent fallback.

The vectorized wave prefilter is a pure receiver-side optimization: every
probe it drops is one whose scalar processing is provably a no-op, and every
survivor re-runs the unchanged scalar loop.  With it forced on, a grid must
therefore produce byte-identical summaries to the scalar path — and to the
pre-batching schedule (``BATCH_LANE_DEFAULT=False``), which pins the whole
stack of probe-plane optimizations against the one-event-per-probe oracle.
A monkeypatched "numpy absent" run proves the pure-Python fallback engages
cleanly, and an explicit ``probe_vectorize=True`` without numpy is a loud
error rather than a silent slowdown.
"""

import pytest

from repro.core.compiler import compile_policy
from repro.exceptions import SimulationError
from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import (
    ScenarioSpec,
    TopologySpec,
    datacenter_policy,
    run_grid,
)
from repro.nputil import np
from repro.protocol import ContraSystem
from repro.protocol import contra_switch as contra_switch_module
from repro.simulator import Network, StatsCollector
from repro.simulator import engine as engine_module
from repro.topology import fattree

TINY = ExperimentConfig(workload_duration=1.5, run_duration=20.0, loads=(0.4,),
                        websearch_scale=0.05, cache_scale=0.2)

needs_numpy = pytest.mark.skipif(np is None,
                                 reason="array probe plane requires numpy")


def tiny_spec(name="vectorize:contra", **overrides):
    topology = TopologySpec("fattree", k=4, capacity=TINY.host_capacity,
                            oversubscription=TINY.oversubscription)
    spec = dict(name=name, system="contra", topology=topology, config=TINY,
                workload="web_search", load=0.4, seed=TINY.seed,
                stop_after_completion=True)
    spec.update(overrides)
    return ScenarioSpec(**spec)


@needs_numpy
class TestVectorizedVsScalarEquivalence:
    def test_grid_summaries_byte_identical(self, monkeypatch):
        spec = tiny_spec()
        monkeypatch.setattr(contra_switch_module,
                            "PROBE_VECTORIZE_DEFAULT", True)
        vectorized = run_grid([spec])
        monkeypatch.setattr(contra_switch_module,
                            "PROBE_VECTORIZE_DEFAULT", False)
        scalar = run_grid([spec])
        # ... and against the pre-batching one-event-per-probe schedule.
        monkeypatch.setattr(engine_module, "BATCH_LANE_DEFAULT", False)
        unbatched = run_grid([spec])
        assert vectorized[0].summary == scalar[0].summary
        assert vectorized[0].summary == unbatched[0].summary

    def test_failure_schedule_summaries_byte_identical(self, monkeypatch):
        # Failures exercise the wave-epoch splitting: a judged wave in
        # flight across a link failure must be lost identically either way,
        # and the recovered link's fresh runs must not inherit stale waves.
        spec = tiny_spec(name="vectorize:failure",
                         topology=TopologySpec("leafspine", k=4),
                         stop_after_completion=False,
                         events=((5.0, "leaf0", "spine0", "fail"),
                                 (12.0, "leaf0", "spine0", "recover")))
        monkeypatch.setattr(contra_switch_module,
                            "PROBE_VECTORIZE_DEFAULT", True)
        vectorized = run_grid([spec])
        monkeypatch.setattr(contra_switch_module,
                            "PROBE_VECTORIZE_DEFAULT", False)
        scalar = run_grid([spec])
        assert vectorized[0].summary == scalar[0].summary
        assert vectorized[0].summary["failure_detections"] > 0

    def test_forwarding_state_identical_on_probe_flood(self):
        # No workload noise at all: flood probes for a few periods and
        # compare the complete forwarding state switch by switch.
        period = 0.256
        snapshots = []
        events = []
        for vectorize in (True, False):
            topology = fattree(4, capacity=100.0, oversubscription=4.0)
            compiled = compile_policy(datacenter_policy(), topology)
            system = ContraSystem(compiled, probe_period=period,
                                  probe_vectorize=vectorize)
            network = Network(topology, system, stats=StatsCollector())
            network.run(period * 6)
            snapshots.append({name: system.logic(name).forwarding_snapshot()
                              for name in network.switches})
            events.append(network.sim.events_processed)
        assert snapshots[0] == snapshots[1]
        # The wave prefilter drops member *deliveries*, never engine events:
        # the schedule itself must be untouched.
        assert events[0] == events[1]


class TestNumpyAbsentFallback:
    def test_scalar_path_engages_without_numpy(self, monkeypatch):
        # Simulate a hermetic environment: nputil resolved numpy to None at
        # import time.  The default must silently fall back to the scalar
        # path and still produce a working (and identical) fabric.
        monkeypatch.setattr(contra_switch_module, "np", None)
        monkeypatch.setattr(contra_switch_module,
                            "PROBE_VECTORIZE_DEFAULT", True)
        period = 0.256
        topology = fattree(4, capacity=100.0, oversubscription=4.0)
        compiled = compile_policy(datacenter_policy(), topology)
        system = ContraSystem(compiled, probe_period=period)
        assert system.vectorize_resolved() is False
        network = Network(topology, system, stats=StatsCollector())
        network.run(period * 4)
        for name, switch in network.switches.items():
            assert switch.routing.wants_probe_waves is False
        destinations = network.destination_switches()
        for switch_name, switch in network.switches.items():
            for destination in destinations:
                if destination != switch_name:
                    assert switch.routing.best_next_hop(destination) is not None

    def test_explicit_vectorize_without_numpy_raises(self, monkeypatch):
        monkeypatch.setattr(contra_switch_module, "np", None)
        topology = fattree(4, capacity=100.0, oversubscription=4.0)
        compiled = compile_policy(datacenter_policy(), topology)
        with pytest.raises(SimulationError, match="numpy"):
            ContraSystem(compiled, probe_vectorize=True)


@needs_numpy
class TestVectorizeModeGates:
    def test_ablation_modes_disable_the_prefilter(self):
        # The prefilter is only exact under split horizon (constant ingress
        # congestion across one wave) and versioning (the unversioned
        # ablation refreshes per-probe staleness state it does not model).
        topology = fattree(4, capacity=100.0, oversubscription=4.0)
        compiled = compile_policy(datacenter_policy(), topology)
        assert ContraSystem(compiled, probe_vectorize=True,
                            split_horizon=False).vectorize_resolved() is False
        assert ContraSystem(compiled, probe_vectorize=True,
                            use_versioning=False).vectorize_resolved() is False
        assert ContraSystem(
            compiled, probe_vectorize=True).vectorize_resolved() is True
