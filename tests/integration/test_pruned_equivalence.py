"""Pruned-vs-unpruned compilation must not change experiment results.

``CompileOptions(prune_unreachable=True)`` may only drop *dead* product-graph
nodes, so the paper-figure experiments (regex-free grid policies: one virtual
node per switch, nothing dead) must produce byte-identical summaries with and
without it.  The pruned runs also compile with ``verify=True``, so every
summary below was produced from cross-checked lowered tables.
"""

import pytest

import repro.experiments.runner as runner_module
from repro.core.compiler import CompileOptions, compile_policy
from repro.experiments.config import ExperimentConfig
from repro.experiments.registry import run_scenario
from repro.experiments.runner import ScenarioSpec, TopologySpec, run_grid

TINY = ExperimentConfig(workload_duration=4.0, run_duration=30.0, loads=(0.6,),
                        websearch_scale=0.05)

PRUNED_OPTIONS = CompileOptions(prune_unreachable=True, verify=True)


def pruning_compile(policy, topology, options=None):
    merged = PRUNED_OPTIONS if options is None else options
    return compile_policy(policy, topology, merged)


def tiny_specs():
    topology = TopologySpec("fattree", k=4, capacity=TINY.host_capacity,
                            oversubscription=TINY.oversubscription)
    return [
        ScenarioSpec(name=f"fig11-like:{system}", system=system,
                     topology=topology, config=TINY, workload="web_search",
                     load=0.6, seed=TINY.seed, stop_after_completion=True)
        for system in ("contra", "ecmp")
    ]


def summaries(results):
    return [(result.name, sorted(result.summary.items())) for result in results]


class TestPrunedEquivalence:
    def test_fig11_quick_grid_summary_byte_identical(self, monkeypatch):
        plain = run_grid(tiny_specs(), processes=1)
        monkeypatch.setattr(runner_module, "compile_policy", pruning_compile)
        pruned = run_grid(tiny_specs(), processes=1)
        assert summaries(plain) == summaries(pruned)

    def test_fig13_scenario_payload_identical(self, monkeypatch):
        plain = run_scenario("fig13", TINY)
        monkeypatch.setattr(runner_module, "compile_policy", pruning_compile)
        pruned = run_scenario("fig13", TINY)
        assert plain.payload == pruned.payload
        assert plain.text == pruned.text

    def test_pruned_compile_records_reachability(self):
        topology = TopologySpec("fattree", k=4, capacity=TINY.host_capacity,
                                oversubscription=TINY.oversubscription).build()
        from repro.experiments.runner import datacenter_policy
        compiled = pruning_compile(datacenter_policy(), topology)
        report = compiled.reachability
        assert report is not None
        # Grid policies are regex-free: nothing to prune, nothing pruned.
        assert report.num_dead == 0
        assert report.tags_total_before == report.tags_total_after
