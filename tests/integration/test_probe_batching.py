"""Probe-plane batching: end-to-end equivalence and the k=32 fabric.

The batch lane is a pure heap-traffic optimization: with it force-disabled
(every probe delivery its own engine event — the pre-batching schedule) a
grid must produce byte-identical summaries.  The per-probe protocol path is
additionally pinned by a table-level equivalence test: a wave processed
through ``on_probe_batch`` leaves exactly the state per-probe ``on_probe``
calls leave.
"""

import pytest

from repro.core.compiler import compile_policy
from repro.experiments.config import ExperimentConfig
from repro.experiments.registry import (
    SCENARIOS,
    GridScenario,
    merge_scenario,
    run_scenario_shard,
    scenario_is_shardable,
)
from repro.experiments.runner import (
    ScenarioSpec,
    TopologySpec,
    datacenter_policy,
    run_grid,
)
from repro.protocol import ContraSystem
from repro.simulator import Network, StatsCollector
from repro.simulator import engine as engine_module
from repro.topology import fattree

TINY = ExperimentConfig(workload_duration=1.5, run_duration=20.0, loads=(0.4,),
                        websearch_scale=0.05, cache_scale=0.2)


def tiny_specs(systems=("ecmp", "contra", "hula")):
    topology = TopologySpec("fattree", k=4, capacity=TINY.host_capacity,
                            oversubscription=TINY.oversubscription)
    return [
        ScenarioSpec(name=f"batching:{system}", system=system, topology=topology,
                     config=TINY, workload="web_search", load=0.4,
                     seed=TINY.seed, stop_after_completion=True)
        for system in systems
    ]


class TestBatchedVsUnbatchedEquivalence:
    @pytest.mark.parametrize("system", ["contra", "hula"])
    def test_grid_summaries_byte_identical_with_lane_disabled(self, system,
                                                              monkeypatch):
        specs = tiny_specs((system,))
        batched = run_grid(specs)
        monkeypatch.setattr(engine_module, "BATCH_LANE_DEFAULT", False)
        unbatched = run_grid(specs)
        assert [r.summary for r in batched] == [r.summary for r in unbatched]

    def test_failure_schedule_summaries_byte_identical(self, monkeypatch):
        # Failures exercise the epoch-keyed batch splitting: a probe wave in
        # flight across a link failure must be lost identically either way.
        topology = TopologySpec("leafspine", k=4)
        spec = ScenarioSpec(
            name="batching:failure", system="contra", topology=topology,
            config=TINY, workload="web_search", load=0.4, seed=TINY.seed,
            events=((5.0, "leaf0", "spine0", "fail"),
                    (12.0, "leaf0", "spine0", "recover")))
        batched = run_grid([spec])
        monkeypatch.setattr(engine_module, "BATCH_LANE_DEFAULT", False)
        unbatched = run_grid([spec])
        assert batched[0].summary == unbatched[0].summary
        assert batched[0].summary["failure_detections"] > 0


class TestOnProbeBatchEquivalence:
    def _fabric(self):
        topology = fattree(4, capacity=100.0, oversubscription=4.0)
        compiled = compile_policy(datacenter_policy(), topology)
        system = ContraSystem(compiled)
        network = Network(topology, system, stats=StatsCollector())
        return network, system

    def test_wave_processing_matches_per_probe_processing(self):
        # Run one fabric a few probe periods, capture a switch's forwarding
        # state; run a twin fabric delivering every probe through the
        # singleton on_probe wrapper instead.  The tables must match exactly.
        period = 0.256
        results = []
        for batch in (True, False):
            network, system = self._fabric()
            if not batch:
                for switch in network.switches.values():
                    # Route every coalesced run through the per-probe wrapper.
                    logic = switch.routing
                    switch.receive_probe_batch = (
                        lambda packets, inport, logic=logic: [
                            logic.on_probe(packet, inport) for packet in packets])
                for link in network.links.values():
                    if link.deliver_batch is not None:
                        link.deliver_batch = None  # per-packet fallback path
            network.run(period * 4)
            snapshot = {name: system.logic(name).forwarding_snapshot()
                        for name in network.switches}
            results.append(snapshot)
        assert results[0] == results[1]


class TestFig11K32Registry:
    def test_scenario_registered_and_shardable(self):
        assert "fig11-k32" in SCENARIOS
        assert isinstance(SCENARIOS["fig11-k32"], GridScenario)
        assert scenario_is_shardable("fig11-k32")
        specs = SCENARIOS["fig11-k32"].build_specs(TINY)
        assert len(specs) == 6                       # 2 workloads x 1 load x 3 systems
        assert all(spec.topology.k == 32 for spec in specs)


K32_MICRO = ExperimentConfig(workload_duration=0.2, run_duration=3.0,
                             loads=(0.2,), websearch_scale=0.02,
                             cache_scale=0.05, probe_period=2.048,
                             flowlet_timeout=4.0, warmup=2.2)


@pytest.mark.slow
class TestFig11K32Point:
    def test_contra_point_completes_via_shard(self, tmp_path):
        """One Contra point of the 1280-switch / 8192-host fabric end to end.

        Sharding by spec index puts the web-search Contra point alone in
        shard 1/6, so the test runs exactly the grid point that exercises the
        batched probe plane at k=32 — completing it at all is what the
        engine-level wins unlock (a full-fidelity sweep remains a multi-shard
        job by design).
        """
        outcome = run_scenario_shard("fig11-k32", K32_MICRO, tmp_path, 1, 6)
        assert outcome.assigned == 1 and outcome.executed == 1
        store_files = list(tmp_path.glob("results-*.jsonl"))
        assert len(store_files) == 1
        with pytest.raises(Exception, match="missing"):
            merge_scenario("fig11-k32", K32_MICRO, tmp_path)  # 5 shards to go
