"""Shared fixtures for the test suite."""

from __future__ import annotations

import os

import pytest

from repro.core.builder import minimize, path, rank_tuple
from repro.core.compiler import compile_policy
from repro.core.policies import MU
from repro.nputil import HAVE_NUMPY
from repro.topology import abilene, fattree, leafspine
from repro.topology.graph import Topology

if not HAVE_NUMPY:
    # Workload generation draws from numpy's PCG64 (`np.random.default_rng`),
    # which has no pure-Python equivalent producing the same streams, so the
    # suites that generate traffic (directly or through the experiment
    # runner) are inherently numpy-bound.  The no-numpy CI job still runs
    # everything else — engine, links, protocol, compiler, topology — which
    # is exactly the surface the pure-Python fallback has to keep working.
    collect_ignore = [
        "integration/test_end_to_end.py",
        "integration/test_experiments.py",
        "integration/test_fluid_model.py",
        "integration/test_pruned_equivalence.py",
        "integration/test_gc_results.py",
        "integration/test_grid_runner.py",
        "integration/test_probe_batching.py",
        "integration/test_probe_vectorize.py",
        "integration/test_scenario_diversity.py",
        "integration/test_sharded_sweeps.py",
        "integration/test_transport_scenarios.py",
        "unit/test_baselines.py",
        "unit/test_policies_and_cli.py",
        "unit/test_race.py",
        "unit/test_topology_spec.py",
        "unit/test_wave_prefilter.py",
        "unit/test_workloads.py",
    ]


@pytest.fixture(autouse=True)
def sanitized_sim(request, monkeypatch):
    """Flip every Simulator in the test to sanitized mode under CONTRA_SANITIZE=1.

    The sanitized-tier CI job re-runs the whole unit suite with the runtime
    sanitizer plane armed, so any invariant the production code trips shows up
    as a test failure.  Tests that assert on exact ``Simulator`` internals
    (heap layout, subclass identity) opt out with ``@pytest.mark.no_sanitize``.
    Without the env var this fixture is a no-op, keeping the default tier-1
    profile byte-for-byte on the unsanitized path.
    """
    if os.environ.get("CONTRA_SANITIZE", "0") in ("", "0") \
            or request.node.get_closest_marker("no_sanitize"):
        yield
        return
    from repro.simulator import sanitizer

    monkeypatch.setattr(sanitizer, "SANITIZE_DEFAULT", True)
    yield


@pytest.fixture
def square_topology() -> Topology:
    """The 4-switch square used by the paper's Figure 4(b)-(e) scenario.

    S and D are opposite corners, A and B the other two, with an S-D direct
    link as in Figure 4(f): S-A, A-D, S-B, B-D, S-D, A-B.
    """
    topo = Topology("square")
    for switch in ("S", "A", "B", "D"):
        topo.add_switch(switch)
    topo.add_link("S", "A")
    topo.add_link("A", "D")
    topo.add_link("S", "B")
    topo.add_link("B", "D")
    topo.add_link("S", "D")
    topo.add_link("A", "B")
    for switch in ("S", "D"):
        host = f"h{switch}"
        topo.add_host(host, switch)
        topo.add_link(host, switch)
    return topo


@pytest.fixture
def figure6_topology() -> Topology:
    """The diamond topology of the paper's running compilation example (Figure 6a).

    Links: A-B, A-C, B-C, B-D, C-D.
    """
    topo = Topology("figure6")
    for switch in ("A", "B", "C", "D"):
        topo.add_switch(switch)
    topo.add_link("A", "B")
    topo.add_link("A", "C")
    topo.add_link("B", "C")
    topo.add_link("B", "D")
    topo.add_link("C", "D")
    for switch in ("A", "B", "D"):
        host = f"h{switch}"
        topo.add_host(host, switch)
        topo.add_link(host, switch)
    return topo


@pytest.fixture
def small_leafspine() -> Topology:
    return leafspine(2, 2, hosts_per_leaf=2, capacity=50.0)


@pytest.fixture
def small_fattree() -> Topology:
    return fattree(4, capacity=100.0, oversubscription=4.0)


@pytest.fixture
def abilene_topology() -> Topology:
    return abilene(capacity=50.0, hosts_per_switch=1)


@pytest.fixture
def mu_compiled(small_leafspine):
    return compile_policy(MU(), small_leafspine)


@pytest.fixture
def dc_policy():
    """Least-utilized shortest path: the datacenter FCT policy."""
    return minimize(rank_tuple(path.len, path.util), name="dc")
