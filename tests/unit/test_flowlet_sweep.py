"""Lazy flowlet-table sweeping: memory bound without behavioural change."""

from repro.protocol.tables import FlowletTable


def fill(table: FlowletTable, count: int, now: float) -> None:
    for index in range(count):
        table.install(f"d{index}", 0, 0, index % table.slots, "hop", 0, now)


class TestHighWaterSweep:
    def test_sweep_reclaims_only_expired_entries(self):
        table = FlowletTable(timeout=0.5, slots=64, sweep_high_water=8)
        fill(table, 8, now=0.0)                 # these expire at t > 0.5
        assert len(table) == 8
        # The 9th install crosses the high-water mark at a time where every
        # earlier entry is expired: all are swept, the new entry survives.
        table.install("fresh", 0, 0, 1, "hop", 0, 1.0)
        assert len(table) == 1
        assert table.swept_entries == 8
        assert table.lookup("fresh", 0, 0, 1, 1.0) is not None

    def test_sweep_keeps_live_entries(self):
        table = FlowletTable(timeout=10.0, slots=64, sweep_high_water=8)
        fill(table, 8, now=0.0)
        table.install("fresh", 0, 0, 1, "hop", 0, 1.0)
        assert len(table) == 9                  # nothing expired: nothing swept
        assert table.swept_entries == 0

    def test_threshold_grows_with_the_live_set(self):
        # A sweep that reclaims nothing must raise the threshold (amortized
        # O(1) per install), not rescan on every subsequent install.
        table = FlowletTable(timeout=10.0, slots=1024, sweep_high_water=4)
        fill(table, 12, now=0.0)
        assert table._sweep_at >= 16            # 2x the surviving live set

    def test_routing_reads_identical_with_and_without_sweeping(self):
        # The sweep may only remove entries lookup() would already refuse to
        # return, so a time-ordered interleaving of installs and lookups (the
        # only access pattern a simulation produces — the clock never runs
        # backwards) reads identically from a swept table and an unswept
        # control table.
        swept = FlowletTable(timeout=0.5, slots=64, sweep_high_water=4)
        control = FlowletTable(timeout=0.5, slots=64, sweep_high_water=10_000)
        keys = [(f"d{i % 5}", i % 3, 0, i % 7) for i in range(40)]
        for step, (dest, tag, pid, fid) in enumerate(keys):
            now = 0.3 * step
            swept.install(dest, tag, pid, fid, f"hop{fid}", tag, now)
            control.install(dest, tag, pid, fid, f"hop{fid}", tag, now)
            # Read back a spread of earlier keys at the current time.
            for earlier in (0, step // 2, max(0, step - 1)):
                key = keys[earlier]
                mine = swept.lookup(*key, now)
                theirs = control.lookup(*key, now)
                assert (mine is None) == (theirs is None), (step, key)
                if mine is not None:
                    assert (mine.next_hop, mine.next_tag) == \
                        (theirs.next_hop, theirs.next_tag)
        assert swept.swept_entries > 0
