"""Edge-case tests for the event engine and link layer.

Covers the semantics the refactored fast-path engine must keep: the
``run(until=...)`` boundary, lazy (expire-on-pop) cancellation, periodic
events, link failure during an in-flight serialization, and determinism of
identical runs.
"""

import pytest

from repro.exceptions import SimulationError
from repro.simulator import Packet, PacketKind, SimLink, Simulator
from repro.simulator.accumulators import ReservoirSampler, StreamingHistogram


class TestRunUntilBoundary:
    def test_event_exactly_at_until_runs(self):
        sim = Simulator()
        fired = []
        sim.schedule_at(2.0, fired.append, "boundary")
        assert sim.run(until=2.0) == 2.0
        assert fired == ["boundary"]

    def test_clock_never_exceeds_until(self):
        sim = Simulator()
        sim.schedule_at(5.0, lambda: None)
        assert sim.run(until=3.0) == 3.0
        assert sim.now == 3.0

    def test_until_with_empty_queue_advances_clock(self):
        sim = Simulator()
        assert sim.run(until=7.5) == 7.5
        assert sim.now == 7.5

    def test_resume_after_until_processes_remaining(self):
        sim = Simulator()
        fired = []
        sim.call_later(1.0, fired.append, "a")
        sim.call_later(4.0, fired.append, "b")
        sim.run(until=2.0)
        assert fired == ["a"]
        sim.run(until=10.0)
        assert fired == ["a", "b"]

    def test_max_events_limits_processing(self):
        sim = Simulator()
        fired = []
        for value in range(5):
            sim.call_later(float(value), fired.append, value)
        sim.run(max_events=2)
        assert fired == [0, 1]


class TestCancellation:
    def test_cancelled_event_expires_without_firing(self):
        sim = Simulator()
        fired = []
        event = sim.schedule(1.0, fired.append, "x")
        assert sim.pending_events == 1
        event.cancel()
        assert sim.pending_events == 0
        sim.run()
        assert fired == []

    def test_double_cancel_is_idempotent(self):
        sim = Simulator()
        event = sim.schedule(1.0, lambda: None)
        event.cancel()
        event.cancel()
        assert sim.pending_events == 0

    def test_cancel_from_an_earlier_event(self):
        sim = Simulator()
        fired = []
        later = sim.schedule(2.0, fired.append, "later")
        sim.schedule(1.0, later.cancel)
        sim.run()
        assert fired == []

    def test_cancelled_event_does_not_advance_clock(self):
        sim = Simulator()
        sim.schedule(5.0, lambda: None)
        late = sim.schedule(100.0, lambda: None)
        late.cancel()
        sim.run()
        assert sim.now == 5.0
        assert sim.events_processed == 1

    def test_cancelled_expiry_does_not_consume_max_events(self):
        sim = Simulator()
        fired = []
        doomed = sim.schedule(1.0, fired.append, "doomed")
        sim.schedule(2.0, fired.append, "a")
        sim.schedule(3.0, fired.append, "b")
        doomed.cancel()
        sim.run(max_events=2)
        assert fired == ["a", "b"]

    def test_cancel_after_firing_keeps_pending_count_exact(self):
        sim = Simulator()
        event = sim.schedule(1.0, lambda: None)
        sim.call_later(5.0, lambda: None)
        sim.run(until=2.0)          # event fired and was popped
        event.cancel()              # must be a no-op, not a counter decrement
        assert sim.pending_events == 1

    def test_periodic_self_cancel_keeps_pending_count_exact(self):
        sim = Simulator()
        handle = sim.schedule_periodic(1.0, lambda: handle.cancel())
        sim.run(until=5.0)
        assert sim.pending_events == 0

    def test_pending_events_counts_fast_path_entries(self):
        sim = Simulator()
        sim.call_later(1.0, lambda: None)
        sim.call_later(2.0, lambda: None)
        event = sim.schedule(3.0, lambda: None)
        assert sim.pending_events == 3
        event.cancel()
        assert sim.pending_events == 2
        sim.run()
        assert sim.pending_events == 0


class TestPeriodicEvents:
    def test_fires_every_period(self):
        sim = Simulator()
        times = []
        sim.schedule_periodic(1.0, lambda: times.append(sim.now))
        sim.run(until=3.5)
        assert times == [0.0, 1.0, 2.0, 3.0]

    def test_start_delay(self):
        sim = Simulator()
        times = []
        sim.schedule_periodic(1.0, lambda: times.append(sim.now), start_delay=0.5)
        sim.run(until=2.6)
        assert times == [0.5, 1.5, 2.5]

    def test_cancel_stops_recurrence(self):
        sim = Simulator()
        times = []
        handle = sim.schedule_periodic(1.0, lambda: times.append(sim.now))
        sim.schedule_at(2.5, handle.cancel)
        sim.run(until=10.0)
        assert times == [0.0, 1.0, 2.0]

    def test_callback_may_cancel_itself(self):
        sim = Simulator()
        times = []
        def tick():
            times.append(sim.now)
            if len(times) == 2:
                handle.cancel()
        handle = sim.schedule_periodic(1.0, tick)
        sim.run(until=10.0)
        assert times == [0.0, 1.0]

    def test_non_positive_period_rejected(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            sim.schedule_periodic(0.0, lambda: None)


class TestLinkFailureInFlight:
    def make_link(self, capacity=1.0, latency=0.5):
        sim = Simulator()
        delivered = []
        link = SimLink(sim, "A", "B", capacity=capacity, latency=latency,
                       buffer_packets=10,
                       deliver=lambda pkt, inport: delivered.append(pkt))
        return sim, link, delivered

    def packet(self):
        return Packet(kind=PacketKind.DATA, src_host="h1", dst_host="h2")

    def test_fail_during_serialization_loses_packet(self):
        sim, link, delivered = self.make_link(capacity=1.0, latency=0.0)
        link.enqueue(self.packet())           # serializes until t=1.0
        sim.schedule_at(0.5, link.fail)       # mid-serialization
        sim.run()
        assert delivered == []

    def test_fail_and_recover_still_loses_in_flight_packet(self):
        sim, link, delivered = self.make_link(capacity=1.0, latency=2.0)
        link.enqueue(self.packet())           # delivery would be at t=3.0
        sim.schedule_at(1.5, link.fail)
        sim.schedule_at(2.0, link.recover)
        sim.run()
        assert delivered == []                # the wire went dark while in flight

    def test_traffic_after_recovery_flows(self):
        sim, link, delivered = self.make_link()
        link.enqueue(self.packet())
        sim.schedule_at(0.1, link.fail)
        sim.schedule_at(2.0, link.recover)
        sim.schedule_at(3.0, lambda: link.enqueue(self.packet()))
        sim.run()
        assert len(delivered) == 1

    def test_fail_clears_queued_backlog(self):
        sim, link, delivered = self.make_link(capacity=1.0, latency=0.0)
        for _ in range(5):
            link.enqueue(self.packet())
        assert link.queue_length > 0
        link.fail()
        assert link.queue_length == 0
        sim.run()
        assert delivered == []


class TestLinkStatsAccountingParity:
    def test_link_inlined_accounting_matches_stats_collector(self):
        """The link's inlined byte accounting must track StatsCollector's.

        link._record_transmission hand-inlines StatsCollector
        .record_transmission for speed; this test feeds identical packets
        through both paths and asserts the collectors agree, so the two
        copies cannot silently diverge.
        """
        from repro.simulator import StatsCollector
        via_link = StatsCollector()
        reference = StatsCollector()
        sim = Simulator()
        link = SimLink(sim, "A", "B", capacity=10.0, latency=0.1,
                       deliver=lambda pkt, inport: None, stats=via_link)
        packets = [
            Packet(kind=PacketKind.DATA, src_host="a", dst_host="b",
                   size_bytes=1500, extra_header_bits=16),
            Packet(kind=PacketKind.ACK, src_host="b", dst_host="a", size_bytes=64),
            Packet(kind=PacketKind.PROBE, src_host="s", dst_host="", size_bytes=50,
                   probe={}),
        ]
        for packet in packets:
            link.enqueue(packet)
            reference.record_transmission(link, packet)
        sim.run()
        for field in ("total_packets", "data_bytes", "ack_bytes", "probe_bytes",
                      "tag_overhead_bytes"):
            assert getattr(via_link, field) == getattr(reference, field), field


class TestDeterminism:
    def _run_once(self):
        """A small closed simulation mixing fast-path, cancellable and periodic."""
        sim = Simulator()
        trace = []
        sim.schedule_periodic(0.7, lambda: trace.append(("tick", sim.now)))
        for index in range(20):
            sim.call_later(0.1 * index, lambda i=index: trace.append(("call", i, sim.now)))
        cancellable = [sim.schedule(0.35 * index, lambda i=index: trace.append(("evt", i)))
                       for index in range(10)]
        for event in cancellable[::2]:
            event.cancel()
        sim.run(until=5.0)
        return trace, sim.events_processed

    def test_identical_runs_produce_identical_traces(self):
        first = self._run_once()
        second = self._run_once()
        assert first == second


class TestStreamingHistogram:
    def test_matches_numpy_percentile(self):
        np = pytest.importorskip("numpy")
        histogram = StreamingHistogram()
        values = [0, 1, 1, 2, 3, 5, 8, 13, 21, 34]
        for value in values:
            histogram.record(value)
        for q in (0, 10, 25, 50, 75, 90, 99, 100):
            assert histogram.percentile(q) == pytest.approx(np.percentile(values, q))

    def test_bounds_and_count(self):
        histogram = StreamingHistogram()
        for value in (5, 3, 9, 3):
            histogram.record(value)
        assert (histogram.min, histogram.max, histogram.count) == (3, 9, 4)

    def test_empty_is_zero(self):
        assert StreamingHistogram().percentile(50) == 0.0


class TestReservoirSampler:
    def test_keeps_everything_under_capacity(self):
        sampler = ReservoirSampler(10)
        sampler.extend(range(7))
        assert sorted(sampler.samples) == list(range(7))

    def test_bounded_and_deterministic(self):
        first = ReservoirSampler(16, seed=3)
        second = ReservoirSampler(16, seed=3)
        first.extend(range(1000))
        second.extend(range(1000))
        assert len(first) == 16
        assert first.samples == second.samples
        assert first.seen == 1000

    def test_rejects_non_positive_capacity(self):
        with pytest.raises(ValueError):
            ReservoirSampler(0)
