"""Unit tests for the NFA/DFA construction used by the compiler."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import regex as rx
from repro.core.automata import DEAD_STATE, DFA, NFA, dfa_from_regex

ALPHABET = ("A", "B", "C", "D", "W")
switch_ids = st.sampled_from(ALPHABET)
words = st.lists(switch_ids, min_size=0, max_size=6)


def small_regexes():
    leaf = st.one_of(
        switch_ids.map(rx.node),
        st.just(rx.any_node()),
        st.just(rx.Epsilon()),
    )

    def extend(children):
        return st.one_of(
            st.tuples(children, children).map(lambda pair: rx.concat(*pair)),
            st.tuples(children, children).map(lambda pair: rx.union(*pair)),
            children.map(rx.star),
        )

    return st.recursive(leaf, extend, max_leaves=8)


class TestNFA:
    def test_single_node(self):
        nfa = NFA.from_regex(rx.node("A"))
        assert nfa.accepts(["A"])
        assert not nfa.accepts(["B"])
        assert not nfa.accepts([])

    def test_concatenation(self):
        nfa = NFA.from_regex(rx.parse_regex("A B D"))
        assert nfa.accepts(["A", "B", "D"])
        assert not nfa.accepts(["A", "B"])

    def test_union(self):
        nfa = NFA.from_regex(rx.parse_regex("A + B"))
        assert nfa.accepts(["A"])
        assert nfa.accepts(["B"])
        assert not nfa.accepts(["C"])

    def test_star(self):
        nfa = NFA.from_regex(rx.parse_regex("A*"))
        assert nfa.accepts([])
        assert nfa.accepts(["A", "A", "A"])
        assert not nfa.accepts(["B"])

    def test_wildcard(self):
        nfa = NFA.from_regex(rx.parse_regex(". ."))
        assert nfa.accepts(["X", "Y"])
        assert not nfa.accepts(["X"])

    def test_empty_set(self):
        nfa = NFA.from_regex(rx.EmptySet())
        assert not nfa.accepts([])
        assert not nfa.accepts(["A"])

    @given(small_regexes(), words)
    @settings(max_examples=200)
    def test_nfa_agrees_with_derivative_matching(self, pattern, word):
        assert NFA.from_regex(pattern).accepts(word) == pattern.matches(word)


class TestDFA:
    def test_waypoint_dfa(self):
        dfa = dfa_from_regex(rx.parse_regex(".* W .*"), ALPHABET)
        assert dfa.accepts(["A", "W", "B"])
        assert dfa.accepts(["W"])
        assert not dfa.accepts(["A", "B"])

    def test_dead_state_transitions_stay_dead(self):
        dfa = dfa_from_regex(rx.parse_regex("A B"), ALPHABET)
        state = dfa.transition(dfa.initial, "B")  # no word starts with B
        assert state == DEAD_STATE
        assert dfa.transition(state, "A") == DEAD_STATE
        assert not dfa.is_accepting(DEAD_STATE)

    def test_symbol_outside_alphabet_goes_dead(self):
        dfa = dfa_from_regex(rx.parse_regex("A"), ("A",))
        assert dfa.transition(dfa.initial, "Z") == DEAD_STATE

    def test_minimization_preserves_language(self):
        pattern = rx.parse_regex("(A + B) (A + B) .*")
        raw = dfa_from_regex(pattern, ALPHABET, minimize=False)
        minimized = dfa_from_regex(pattern, ALPHABET, minimize=True)
        assert minimized.num_states <= raw.num_states
        for word in (["A"], ["A", "B"], ["B", "A", "C"], ["C", "A"], []):
            assert raw.accepts(word) == minimized.accepts(word)

    def test_minimization_merges_equivalent_states(self):
        # A A + A A has redundant states before minimization.
        pattern = rx.parse_regex("A A + A A")
        raw = dfa_from_regex(pattern, ("A",), minimize=False)
        minimized = dfa_from_regex(pattern, ("A",), minimize=True)
        assert minimized.num_states <= raw.num_states

    def test_live_states_excludes_trap_states(self):
        # After seeing B the word can never match "A .*": that state is not live.
        dfa = dfa_from_regex(rx.parse_regex("A .*"), ALPHABET, minimize=False)
        live = dfa.live_states()
        dead_successor = dfa.transition(dfa.initial, "B")
        assert dfa.initial in live
        assert dead_successor == DEAD_STATE or dead_successor not in live

    def test_states_enumeration(self):
        dfa = dfa_from_regex(rx.parse_regex("A B"), ALPHABET)
        assert dfa.initial in dfa.states
        assert all(s >= 0 for s in dfa.states)

    @given(small_regexes(), words)
    @settings(max_examples=200)
    def test_dfa_agrees_with_derivative_matching(self, pattern, word):
        dfa = dfa_from_regex(pattern, ALPHABET)
        assert dfa.accepts(word) == pattern.matches(word)

    @given(small_regexes(), words)
    @settings(max_examples=100)
    def test_reversed_dfa_accepts_reversed_words(self, pattern, word):
        """The construction the compiler relies on: run the reversed regex's DFA
        over the probe's (reversed) path."""
        dfa = dfa_from_regex(pattern.reverse(), ALPHABET)
        assert dfa.accepts(list(reversed(word))) == pattern.matches(word)

    def test_repr(self):
        dfa = dfa_from_regex(rx.parse_regex("A"), ALPHABET)
        assert "DFA" in repr(dfa)
