"""Unit tests for the discrete-event simulator substrate."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.exceptions import SimulationError
from repro.simulator import (
    ACK_PACKET_BYTES,
    DATA_PACKET_BYTES,
    Flow,
    Network,
    Packet,
    PacketKind,
    ReceiverState,
    RoutingSystem,
    SenderState,
    SimLink,
    Simulator,
    StatsCollector,
)
from repro.simulator.switchnode import RoutingLogic
from repro.topology import leafspine


class TestSimulator:
    def test_events_run_in_time_order(self):
        sim = Simulator()
        order = []
        sim.schedule(2.0, order.append, "b")
        sim.schedule(1.0, order.append, "a")
        sim.schedule(3.0, order.append, "c")
        sim.run()
        assert order == ["a", "b", "c"]

    def test_ties_break_by_scheduling_order(self):
        sim = Simulator()
        order = []
        sim.schedule(1.0, order.append, 1)
        sim.schedule(1.0, order.append, 2)
        sim.run()
        assert order == [1, 2]

    def test_run_until_stops_clock(self):
        sim = Simulator()
        fired = []
        sim.schedule(5.0, fired.append, "late")
        assert sim.run(until=2.0) == 2.0
        assert fired == []
        sim.run(until=10.0)
        assert fired == ["late"]

    def test_negative_delay_rejected(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            sim.schedule(-1.0, lambda: None)

    def test_schedule_in_past_rejected(self):
        sim = Simulator()
        sim.schedule(1.0, lambda: None)
        sim.run()
        with pytest.raises(SimulationError):
            sim.schedule_at(0.5, lambda: None)

    def test_cancelled_event_does_not_fire(self):
        sim = Simulator()
        fired = []
        event = sim.schedule(1.0, fired.append, "x")
        event.cancel()
        sim.run()
        assert fired == []

    def test_stop_halts_processing(self):
        sim = Simulator()
        fired = []

        def first():
            fired.append("first")
            sim.stop()

        sim.schedule(1.0, first)
        sim.schedule(2.0, fired.append, "second")
        sim.run()
        assert fired == ["first"]

    def test_events_scheduled_during_run_are_processed(self):
        sim = Simulator()
        fired = []

        def chain(n):
            fired.append(n)
            if n < 3:
                sim.schedule(1.0, chain, n + 1)

        sim.schedule(0.0, chain, 0)
        sim.run()
        assert fired == [0, 1, 2, 3]
        assert sim.events_processed == 4

    @given(st.lists(st.floats(min_value=0.0, max_value=100.0, allow_nan=False),
                    min_size=1, max_size=30))
    @settings(max_examples=50, deadline=None)
    def test_now_is_monotone_nondecreasing(self, delays):
        sim = Simulator()
        observed = []
        for delay in delays:
            sim.schedule(delay, lambda: observed.append(sim.now))
        sim.run()
        assert observed == sorted(observed)


class TestSimLink:
    def make_link(self, capacity=10.0, latency=0.1, buffer_packets=3):
        sim = Simulator()
        delivered = []
        link = SimLink(sim, "A", "B", capacity=capacity, latency=latency,
                       buffer_packets=buffer_packets,
                       deliver=lambda pkt, inport: delivered.append((sim.now, pkt)))
        return sim, link, delivered

    def packet(self, kind=PacketKind.DATA, size=DATA_PACKET_BYTES):
        return Packet(kind=kind, src_host="h1", dst_host="h2", size_bytes=size)

    def test_delivery_includes_serialization_and_latency(self):
        sim, link, delivered = self.make_link(capacity=10.0, latency=0.1)
        link.enqueue(self.packet())
        sim.run()
        assert len(delivered) == 1
        assert delivered[0][0] == pytest.approx(0.1 + 1.0 / 10.0)

    def test_packets_delivered_in_fifo_order(self):
        sim, link, delivered = self.make_link(buffer_packets=10)
        packets = [self.packet() for _ in range(3)]
        for pkt in packets:
            link.enqueue(pkt)
        sim.run()
        assert [p.packet_id for _, p in delivered] == [p.packet_id for p in packets]

    def test_buffer_overflow_drops(self):
        sim, link, delivered = self.make_link(buffer_packets=2)
        results = [link.enqueue(self.packet()) for _ in range(5)]
        assert results.count(False) >= 1
        assert link.packets_dropped >= 1
        sim.run()
        assert len(delivered) == 5 - link.packets_dropped

    def test_probes_jump_ahead_of_data(self):
        sim, link, delivered = self.make_link(capacity=1.0, latency=0.0, buffer_packets=10)
        for _ in range(3):
            link.enqueue(self.packet())
        probe = Packet(kind=PacketKind.PROBE, src_host="A", dst_host="", size_bytes=64,
                       probe={"origin": "A"})
        link.enqueue(probe)
        sim.run()
        kinds = [p.kind for _, p in delivered]
        # The probe overtakes all queued data except the packet already serializing.
        assert kinds.index(PacketKind.PROBE) <= 1

    def test_failed_link_drops_everything(self):
        sim, link, delivered = self.make_link()
        link.fail()
        assert link.enqueue(self.packet()) is False
        sim.run()
        assert delivered == []
        link.recover()
        assert link.enqueue(self.packet()) is True

    def test_utilization_rises_under_load_and_decays(self):
        sim, link, _ = self.make_link(capacity=2.0, latency=0.0, buffer_packets=100)
        for _ in range(10):
            link.enqueue(self.packet())
        sim.run()
        busy_util = link.utilization
        assert busy_util > 0.3
        # Let time pass without traffic: the estimate decays.
        sim.schedule(10.0, lambda: None)
        sim.run()
        assert link.utilization < busy_util

    def test_metric_values_exposes_util_lat_len(self):
        _, link, _ = self.make_link(latency=0.25)
        values = link.metric_values()
        assert values["lat"] == 0.25
        assert values["len"] == 1.0
        assert 0.0 <= values["util"] <= 1.0

    def test_small_packets_serialize_faster(self):
        sim, link, delivered = self.make_link(capacity=1.0, latency=0.0)
        link.enqueue(self.packet(kind=PacketKind.ACK, size=ACK_PACKET_BYTES))
        sim.run()
        assert delivered[0][0] < 0.1


class TestTransportState:
    def test_sender_window_limits_in_flight(self):
        sender = SenderState(Flow("a", "b", 10, 0.0), window=4, rto=5.0)
        sent = 0
        while sender.can_send():
            sender.next_seq += 1
            sent += 1
        assert sent == 4

    def test_sender_ack_advances_window(self):
        sender = SenderState(Flow("a", "b", 10, 0.0), window=4, rto=5.0)
        sender.next_seq = 4
        assert sender.on_ack(2, now=1.0)
        assert sender.in_flight == 2
        assert not sender.on_ack(1, now=2.0)  # stale ACK ignored

    def test_sender_completion(self):
        sender = SenderState(Flow("a", "b", 3, 0.0), window=8, rto=5.0)
        sender.next_seq = 3
        sender.on_ack(3, now=1.0)
        assert sender.completed

    def test_sender_timeout_and_retransmit(self):
        sender = SenderState(Flow("a", "b", 10, 0.0), window=4, rto=2.0)
        sender.next_seq = 4
        assert not sender.timeout_expired(1.0)
        assert sender.timeout_expired(3.0)
        sender.retransmit(3.0)
        assert sender.next_seq == 0
        assert sender.retransmissions == 1

    def test_receiver_in_order(self):
        receiver = ReceiverState(1, "a")
        assert receiver.on_data(0, 3) == 1
        assert receiver.on_data(1, 3) == 2
        assert receiver.on_data(2, 3) == 3
        assert receiver.completed

    def test_receiver_out_of_order(self):
        receiver = ReceiverState(1, "a")
        assert receiver.on_data(2, 3) == 0
        assert receiver.on_data(0, 3) == 1
        assert receiver.on_data(1, 3) == 3
        assert receiver.completed

    def test_receiver_duplicates_ignored(self):
        receiver = ReceiverState(1, "a")
        receiver.on_data(0, 2)
        assert receiver.on_data(0, 2) == 1
        assert not receiver.completed

    def test_flow_size_clamped_to_one(self):
        assert Flow("a", "b", 0, 0.0).size_packets == 1


class TestStatsCollector:
    def test_flow_lifecycle(self):
        stats = StatsCollector()
        stats.register_flow(1, "a", "b", 10, 1.0)
        assert stats.completion_ratio() == 0.0
        stats.complete_flow(1, 5.0)
        assert stats.flow_completion_times() == [4.0]
        assert stats.average_fct() == 4.0
        assert stats.completion_ratio() == 1.0

    def test_double_completion_ignored(self):
        stats = StatsCollector()
        stats.register_flow(1, "a", "b", 10, 1.0)
        stats.complete_flow(1, 5.0)
        stats.complete_flow(1, 9.0)
        assert stats.flows[1].fct == 4.0

    def test_average_fct_empty_is_nan(self):
        import math
        assert math.isnan(StatsCollector().average_fct())

    def test_queue_cdf(self):
        stats = StatsCollector()
        for length in range(101):
            stats.record_queue_length(None, length)
        cdf = stats.queue_length_cdf((0.5, 1.0))
        assert cdf[0.5] == pytest.approx(50.0)
        assert cdf[1.0] == pytest.approx(100.0)

    def test_traffic_accounting_by_kind(self):
        stats = StatsCollector()
        data = Packet(kind=PacketKind.DATA, src_host="a", dst_host="b",
                      size_bytes=1500, extra_header_bits=16)
        ack = Packet(kind=PacketKind.ACK, src_host="b", dst_host="a", size_bytes=64)
        probe = Packet(kind=PacketKind.PROBE, src_host="s", dst_host="", size_bytes=50,
                       probe={})
        stats.record_transmission(None, data)
        stats.record_transmission(None, ack)
        stats.record_transmission(None, probe)
        assert stats.data_bytes == 1500
        assert stats.ack_bytes == 64
        assert stats.probe_bytes == 50
        assert stats.tag_overhead_bytes == pytest.approx(2.0)
        assert stats.overhead_ratio() == pytest.approx(52.0 / 1500.0)

    def test_throughput_series_bins_deliveries(self):
        stats = StatsCollector(throughput_bin_ms=1.0)
        packet = Packet(kind=PacketKind.DATA, src_host="a", dst_host="b", size_bytes=1500)
        stats.record_delivery(packet, 0.2)
        stats.record_delivery(packet, 0.7)
        stats.record_delivery(packet, 1.5)
        series = dict(stats.throughput_series())
        assert series[0.0] == pytest.approx(2.0)
        assert series[1.0] == pytest.approx(1.0)

    def test_loop_fraction(self):
        stats = StatsCollector()
        assert stats.loop_fraction() == 0.0
        stats.data_packets_forwarded = 100
        stats.looped_packets = 2
        assert stats.loop_fraction() == pytest.approx(0.02)

    def test_summary_keys(self):
        summary = StatsCollector().summary()
        for key in ("flows", "avg_fct_ms", "overhead_ratio", "loop_fraction", "drops"):
            assert key in summary


class _StaticLogic(RoutingLogic):
    """Forward everything to the first available switch port (test helper)."""

    def on_data_packet(self, packet, inport):
        neighbors = self.switch.switch_neighbors()
        return neighbors[0] if neighbors else None


class _StaticSystem(RoutingSystem):
    name = "static-test"

    def create_switch_logic(self, switch):
        return _StaticLogic()


class TestNetwork:
    def test_build_wires_links_and_hosts(self):
        topo = leafspine(2, 2, hosts_per_leaf=1)
        net = Network(topo, _StaticSystem())
        assert set(net.switches) == set(topo.switches)
        assert set(net.hosts) == set(topo.hosts)
        assert len(net.links) == len(topo.links)
        assert net.hosts["h0_0"].uplink is net.links[("h0_0", "leaf0")]

    def test_destination_switches(self):
        topo = leafspine(2, 2, hosts_per_leaf=1)
        net = Network(topo, _StaticSystem())
        assert net.destination_switches() == ["leaf0", "leaf1"]

    def test_schedule_flows_validates_hosts(self):
        topo = leafspine(2, 2, hosts_per_leaf=1)
        net = Network(topo, _StaticSystem())
        with pytest.raises(SimulationError):
            net.schedule_flows([Flow("nope", "h1_0", 1, 0.0)])

    def test_fail_and_recover_link(self):
        topo = leafspine(2, 2, hosts_per_leaf=1)
        net = Network(topo, _StaticSystem())
        net.fail_link("leaf0", "spine0", at_time=1.0)
        net.recover_link("leaf0", "spine0", at_time=2.0)
        net.run(1.5)
        assert net.link("leaf0", "spine0").failed
        assert net.link("spine0", "leaf0").failed
        net.sim.run(until=3.0)
        assert not net.link("leaf0", "spine0").failed

    def test_unknown_link_lookup_raises(self):
        topo = leafspine(2, 2, hosts_per_leaf=1)
        net = Network(topo, _StaticSystem())
        with pytest.raises(SimulationError):
            net.link("leaf0", "leaf1")

    def test_link_metric_lookup_callable(self):
        topo = leafspine(2, 2, hosts_per_leaf=1)
        net = Network(topo, _StaticSystem())
        metrics = net.link_metric_lookup()("leaf0", "spine0")
        assert set(metrics) == {"util", "lat", "len"}
