"""Receiver ACK coalescing (``ack_every``): opt-in wire reduction, safe default."""

import pytest

from repro.exceptions import SimulationError
from repro.simulator import Network, StatsCollector
from repro.simulator.flow import Flow
from repro.topology import leafspine


def run_leafspine(ack_every: int, flows=((0, 40), (1, 17))):
    from repro.baselines import EcmpSystem

    topology = leafspine(2, 2, hosts_per_leaf=2, capacity=50.0)
    network = Network(topology, EcmpSystem(), stats=StatsCollector(),
                      host_ack_every=ack_every)
    hosts = topology.hosts
    for index, (offset, size) in enumerate(flows):
        network.schedule_flows([Flow(hosts[offset], hosts[-1 - offset], size,
                                     start_time=0.1 * (index + 1))])
    stats = network.run(60.0)
    return stats


class TestAckCoalescing:
    def test_default_sends_one_ack_per_segment(self):
        stats = run_leafspine(ack_every=1)
        assert stats.completion_ratio() == 1.0
        assert stats.drops == 0
        # One ACK per delivered segment, retracing the same hop count: the
        # byte accounting is per link traversal, so ACK traversals must match
        # data traversals exactly (64 vs 1500 bytes each).
        data_traversals = stats.data_bytes / 1500.0
        assert stats.ack_bytes == pytest.approx(data_traversals * 64.0)

    def test_coalescing_halves_ack_traffic_and_flows_still_complete(self):
        base = run_leafspine(ack_every=1)
        coalesced = run_leafspine(ack_every=2)
        assert coalesced.completion_ratio() == 1.0
        # Identical goodput, materially fewer ACK bytes on the wire.
        assert coalesced.goodput_bytes == base.goodput_bytes
        assert coalesced.ack_bytes < base.ack_bytes * 0.75

    def test_larger_coalescing_window_still_completes(self):
        stats = run_leafspine(ack_every=4, flows=((0, 33), (1, 5)))
        assert stats.completion_ratio() == 1.0

    def test_single_segment_flow_completes_immediately(self):
        stats = run_leafspine(ack_every=8, flows=((0, 1),))
        assert stats.completion_ratio() == 1.0

    def test_invalid_ack_every_rejected(self):
        with pytest.raises(SimulationError):
            run_leafspine(ack_every=0)


class TestAckCoalescingWithLoss:
    def test_slowstart_with_coalescing_recovers_from_loss(self):
        """Out-of-order deliveries must still produce immediate duplicate ACKs."""
        from repro.baselines import EcmpSystem

        topology = leafspine(2, 2, hosts_per_leaf=2, capacity=50.0)
        network = Network(topology, EcmpSystem(), stats=StatsCollector(),
                          transport="slowstart", host_ack_every=2)
        hosts = topology.hosts
        network.schedule_flows([Flow(hosts[0], hosts[-1], 60, start_time=0.1)])
        # A short blip loses in-flight segments mid-transfer.
        leaf = topology.attachment_switch(hosts[-1])
        spine = [n for n in topology.switch_neighbors(leaf)][0]
        network.fail_link(leaf, spine, at_time=0.4)
        network.recover_link(leaf, spine, at_time=0.6)
        stats = network.run(80.0)
        assert stats.completion_ratio() == 1.0
