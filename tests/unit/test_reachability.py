"""Unit tests for product-graph reachability analysis and dead-state pruning."""

import pytest

from repro.core import policies
from repro.core.analysis import analyze_reachability, prune_dead_nodes
from repro.core.analysis.reachability import _maybe_finite, _resolve_bool
from repro.core import ast
from repro.core.builder import if_, inf, lt, matches, minimize, path
from repro.core.compiler import CompileOptions, compile_policy
from repro.core.product_graph import build_product_graph
from repro.core.regex import parse_regex
from repro.exceptions import CompilationError, PolicyAnalysisError
from repro.topology.graph import Topology


@pytest.fixture
def diamond():
    """The Figure 6(a) topology: A-B, A-C, B-C, B-D, C-D."""
    topo = Topology("figure6")
    for switch in ("A", "B", "C", "D"):
        topo.add_switch(switch)
    for a, b in (("A", "B"), ("A", "C"), ("B", "C"), ("B", "D"), ("C", "D")):
        topo.add_link(a, b)
    return topo


FAILOVER = policies.failover_preference(("A", "B", "D"), ("B", ".*", "D"))


class TestFigure6DeadState:
    """failover(A B D | B .* D) on the diamond has one provably dead node."""

    @pytest.fixture
    def graph(self, diamond):
        return build_product_graph(diamond, FAILOVER.regexes(),
                                   minimize_tags=False)

    def test_exactly_one_dead_node(self, graph):
        report = analyze_reachability(FAILOVER, graph)
        assert report.num_dead == 1
        dead = report.dead_nodes[0]
        # (D;-,-): probes that re-enter D with both automata dead — no
        # continuation can ever match either regex, so the rank is inf forever.
        assert dead.switch == "D"
        assert str(dead) == "(D;-,-)"
        assert report.per_switch_dead == {"D": 1}
        assert report.dead_nodes == report.never_finite

    def test_origins_never_classified_dead(self, graph):
        report = analyze_reachability(FAILOVER, graph)
        origins = set(graph.probe_sending_nodes.values())
        assert origins.isdisjoint(report.dead_nodes)
        assert origins <= set(report.kept_nodes)

    def test_prune_shrinks_graph_and_reports_tags(self, graph):
        before = graph.num_nodes
        report = prune_dead_nodes(FAILOVER, graph)
        assert graph.num_nodes == before - 1
        assert report.tags_total_before == before
        assert report.tags_total_after == before - 1
        assert report.tags_total_after < report.tags_total_before
        # Tags were reassigned: still dense per switch.
        for switch in ("A", "B", "C", "D"):
            tags = sorted(graph.tag_of(n) for n in graph.nodes_of_switch(switch))
            assert tags == list(range(len(tags)))

    def test_report_serialises_and_renders(self, graph):
        report = prune_dead_nodes(FAILOVER, graph)
        data = report.to_json_dict()
        assert data["nodes_dead"] == 1
        assert data["dead_nodes"] == ["(D;-,-)"]
        assert data["tags_total_before"] == data["tags_total_after"] + 1
        text = report.render()
        assert "1 dead" in text and "(D;-,-)" in text


class TestRegexFreePolicies:
    """Without regexes every switch has one virtual node and none are dead."""

    @pytest.mark.parametrize("factory", [policies.minimum_utilization,
                                         policies.shortest_path,
                                         policies.congestion_aware])
    def test_no_dead_nodes(self, diamond, factory):
        policy = factory()
        graph = build_product_graph(diamond, policy.regexes())
        report = prune_dead_nodes(policy, graph)
        assert report.num_dead == 0
        assert graph.num_nodes == 4
        assert report.tags_total_before == report.tags_total_after == 4


class TestHandMutatedGraph:
    """Orphaned nodes (possible after hand edits / minimisation) are dead."""

    def test_origin_unreachable_node_detected(self, diamond):
        policy = policies.waypointing(("C",))
        graph = build_product_graph(diamond, policy.regexes(),
                                    minimize_tags=False)
        # Orphan one non-origin node by severing every edge into it.
        origins = set(graph.probe_sending_nodes.values())
        victim = next(n for n in graph.nodes
                      if n not in origins and graph.in_edges[n])
        for pred in list(graph.in_edges[victim]):
            graph.out_edges[pred].remove(victim)
        graph.in_edges[victim] = []
        report = analyze_reachability(policy, graph)
        assert victim in report.origin_unreachable
        assert victim in report.dead_nodes

    def test_restrict_to_refuses_to_drop_origins(self, diamond):
        policy = policies.minimum_utilization()
        graph = build_product_graph(diamond, policy.regexes())
        keep = [n for n in graph.nodes if n.switch != "A"]
        with pytest.raises(CompilationError):
            graph.restrict_to(keep)

    def test_restrict_to_superset_is_noop(self, diamond):
        policy = policies.minimum_utilization()
        graph = build_product_graph(diamond, policy.regexes())
        nodes_before = list(graph.nodes)
        graph.restrict_to(list(graph.nodes))
        assert graph.nodes == nodes_before


class TestCompilerIntegration:
    def test_prune_option_default_off(self, diamond):
        compiled = compile_policy(FAILOVER, diamond)
        assert compiled.reachability is None

    def test_prune_option_records_report(self, diamond):
        compiled = compile_policy(FAILOVER, diamond,
                                  CompileOptions(prune_unreachable=True))
        assert compiled.reachability is not None
        assert compiled.reachability.num_dead >= 0

    def test_pruned_configs_identical_when_nothing_dead(self, diamond):
        policy = policies.minimum_utilization()
        plain = compile_policy(policy, diamond)
        pruned = compile_policy(policy, diamond,
                                CompileOptions(prune_unreachable=True))
        assert pruned.reachability.num_dead == 0
        for switch in diamond.switches:
            a, b = plain.device(switch), pruned.device(switch)
            assert a.probe_transition == b.probe_transition
            assert a.probe_origin_tag == b.probe_origin_tag
            assert sorted(a.tags) == sorted(b.tags)


class TestFiniteCapability:
    """The conservative three-valued core of the dead-state classifier."""

    def test_resolve_bool_three_valued(self):
        pattern = parse_regex(".* C .*")
        test = ast.RegexTest(pattern)
        assert _resolve_bool(test, {pattern: True}) is True
        assert _resolve_bool(test, {pattern: False}) is False
        assert _resolve_bool(test, {}) is None
        assert _resolve_bool(ast.Not(test), {pattern: True}) is False
        cmp = ast.Compare("<", ast.Attr("util"), ast.Const(0.5))
        assert _resolve_bool(cmp, {}) is None
        assert _resolve_bool(ast.And(test, cmp), {pattern: False}) is False
        assert _resolve_bool(ast.Or(test, cmp), {pattern: True}) is True
        assert _resolve_bool(ast.Or(test, cmp), {pattern: False}) is None

    def test_maybe_finite_resolved_branches(self):
        pattern = parse_regex(".* C .*")
        expr = ast.If(ast.RegexTest(pattern), ast.Attr("util"), ast.Infinite())
        assert _maybe_finite(expr, {pattern: True})
        assert not _maybe_finite(expr, {pattern: False})
        # Unknown acceptance: conservatively finite-capable.
        assert _maybe_finite(expr, {})

    def test_maybe_finite_operators(self):
        util, infinite = ast.Attr("util"), ast.Infinite()
        assert _maybe_finite(ast.BinOp("min", util, infinite), {})
        assert not _maybe_finite(ast.BinOp("+", util, infinite), {})
        assert not _maybe_finite(ast.BinOp("max", util, infinite), {})
        # Tuple rank: infinite iff the leading component is.
        assert not _maybe_finite(ast.TupleExpr((infinite, util)), {})
        assert _maybe_finite(ast.TupleExpr((util, infinite)), {})

    def test_metric_guard_keeps_both_branches_alive(self):
        expr = if_(lt(path.util, 0.5), inf, path.lat)
        policy = minimize(expr)
        assert _maybe_finite(policy.expression, {})

    def test_analyze_rejects_garbage_policy(self, diamond):
        graph = build_product_graph(diamond, [])
        with pytest.raises(PolicyAnalysisError):
            analyze_reachability("not a policy", graph)
