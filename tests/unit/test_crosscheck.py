"""Unit tests for the lowered-table cross-checker.

Clean compiles must pass; corrupted lowered artifacts (the dense int64 rows,
the tag table, the symbolic transitions) must be flagged with a problem and
make ``CompileOptions(verify=True)`` / ``verify_lowered_tables`` raise.
"""

import pytest

from repro.core import policies
from repro.core.analysis import crosscheck_lowered_tables, verify_lowered_tables
from repro.core.compiler import CompileOptions, compile_policy
from repro.exceptions import VerificationError
from repro.nputil import np
from repro.topology import abilene
from repro.topology.graph import Topology

pytestmark = pytest.mark.skipif(np is None, reason="crosscheck corruption "
                                "tests exercise the numpy lowering")


@pytest.fixture
def diamond():
    topo = Topology("figure6")
    for switch in ("A", "B", "C", "D"):
        topo.add_switch(switch)
    for a, b in (("A", "B"), ("A", "C"), ("B", "C"), ("B", "D"), ("C", "D")):
        topo.add_link(a, b)
    return topo


class TestCleanCompiles:
    def test_single_metric_policy_passes(self, diamond):
        report = crosscheck_lowered_tables(
            compile_policy(policies.minimum_utilization(), diamond))
        assert report.ok and bool(report)
        assert report.devices_checked == 4
        assert report.transitions_checked > 0
        assert report.shadows_checked == 4
        assert report.problems == []

    def test_decomposed_policy_on_abilene_passes(self):
        report = crosscheck_lowered_tables(
            compile_policy(policies.congestion_aware(), abilene()))
        assert report.ok
        assert report.devices_checked == 11

    def test_verify_option_passes_on_clean_compile(self, diamond):
        compiled = compile_policy(policies.minimum_utilization(), diamond,
                                  CompileOptions(verify=True))
        assert compiled.device_configs  # compiled and verified without raising

    def test_report_serialises_and_renders(self, diamond):
        report = crosscheck_lowered_tables(
            compile_policy(policies.shortest_path(), diamond))
        data = report.to_json_dict()
        assert data["ok"] is True
        assert data["devices_checked"] == 4
        assert "OK" in report.render()


class TestCorruptionDetection:
    def test_mutated_lowered_row_flagged(self, diamond):
        compiled = compile_policy(policies.minimum_utilization(), diamond)
        config = compiled.device("B")
        rows = config.lowered_transitions()
        neighbor = sorted(rows)[0]
        rows[neighbor][0] = 63  # not a local tag, disagrees with the dict
        report = crosscheck_lowered_tables(compiled)
        assert not report.ok
        assert any("disagrees with symbolic" in p for p in report.problems)

    def test_mutated_symbolic_entry_flagged(self, diamond):
        compiled = compile_policy(policies.minimum_utilization(), diamond)
        config = compiled.device("B")
        config.lowered_transitions()  # populate the cache first
        key = sorted(config.probe_transition)[0]
        config.probe_transition[key] = config.probe_transition[key] + 17
        report = crosscheck_lowered_tables(compiled)
        assert not report.ok

    def test_transition_to_unknown_neighbor_tag_flagged(self, diamond):
        compiled = compile_policy(policies.minimum_utilization(), diamond)
        config = compiled.device("B")
        neighbor = sorted(compiled.topology.switch_neighbors("B"))[0]
        config.probe_transition[(neighbor, 97)] = config.probe_origin_tag
        report = crosscheck_lowered_tables(compiled)
        assert any("does not define" in p for p in report.problems)

    def test_sparse_tag_table_flagged(self, diamond):
        compiled = compile_policy(
            policies.failover_preference(("A", "B", "D"), ("B", ".*", "D")),
            diamond)
        config = compiled.device("D")
        tags = sorted(config.tags)
        assert len(tags) > 1
        victim = next(t for t in tags if t != config.probe_origin_tag)
        del config.tags[victim]
        report = crosscheck_lowered_tables(compiled)
        assert any("not dense" in p for p in report.problems)

    def test_verify_raises_with_problem_list(self, diamond):
        compiled = compile_policy(policies.minimum_utilization(), diamond)
        rows = compiled.device("A").lowered_transitions()
        rows[sorted(rows)[0]][0] = 63
        with pytest.raises(VerificationError, match="disagrees"):
            verify_lowered_tables(compiled)


class TestNumpyAbsentPath:
    def test_protocol_checks_skip_with_note(self, diamond, monkeypatch):
        compiled = compile_policy(policies.minimum_utilization(), diamond)
        import repro.core.analysis.crosscheck as crosscheck_module
        monkeypatch.setattr(crosscheck_module, "np", None)
        report = crosscheck_lowered_tables(compiled)
        assert report.ok
        assert report.shadows_checked == 0
        assert report.transitions_checked == 0
        assert any("numpy unavailable" in n for n in report.notes)
