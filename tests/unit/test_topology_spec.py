"""Regression tests: TopologySpec.build must apply every field or reject it.

Before the scenario-diversity refactor, several spec fields were silently
dropped (``capacity``/``hosts_per_switch`` for ``random``,
``hosts_per_switch``/``seed`` for ``fattree``, ``oversubscription`` for
``leafspine``), so two specs that compare (and cache) as *different* keys
could build *identical* networks.  Every test in this module fails on that
pre-fix behaviour.
"""

import pytest

from repro.exceptions import ExperimentError
from repro.experiments.runner import TopologySpec


class TestRandomFamilyAppliesFields:
    def test_capacity_reaches_the_links(self):
        topo = TopologySpec("random", size=8, seed=3, capacity=42.0).build()
        assert all(link.capacity == 42.0 for link in topo.links)

    def test_hosts_per_switch_attaches_hosts(self):
        bare = TopologySpec("random", size=8, seed=3, capacity=10.0).build()
        hosted = TopologySpec("random", size=8, seed=3, capacity=10.0,
                              hosts_per_switch=2).build()
        assert len(bare.hosts) == 0
        assert len(hosted.hosts) == 16

    def test_distinct_specs_build_distinct_networks(self):
        # The original bug: these two cached under different keys but built
        # byte-identical topologies because capacity was dropped.
        low = TopologySpec("random", size=8, seed=3, capacity=10.0).build()
        high = TopologySpec("random", size=8, seed=3, capacity=99.0).build()
        assert low.links[0].capacity != high.links[0].capacity

    def test_size_required(self):
        with pytest.raises(ExperimentError):
            TopologySpec("random").build()


class TestFattreeFamily:
    def test_hosts_per_switch_sets_hosts_per_edge(self):
        default = TopologySpec("fattree", k=4).build()
        single = TopologySpec("fattree", k=4, hosts_per_switch=1).build()
        assert len(default.hosts) == 16      # k^3/4 for k=4
        assert len(single.hosts) == 8        # one host per edge switch

    def test_seed_rejected(self):
        with pytest.raises(ExperimentError, match="seed"):
            TopologySpec("fattree", k=4, seed=7).build()

    def test_size_rejected(self):
        with pytest.raises(ExperimentError, match="size"):
            TopologySpec("fattree", k=4, size=10).build()

    def test_latency_applied(self):
        topo = TopologySpec("fattree", k=4, latency=0.2).build()
        assert all(link.latency == 0.2 for link in topo.links)


class TestLeafspineFamily:
    def test_oversubscription_divides_uplink_capacity(self):
        topo = TopologySpec("leafspine", k=2, capacity=100.0,
                            oversubscription=4.0).build()
        assert topo.link("leaf0", "spine0").capacity == 25.0
        assert topo.link("h0_0", "leaf0").capacity == 100.0

    def test_oversubscription_distinguishes_specs(self):
        # Pre-fix, oversubscription was dropped for leafspine: both specs
        # built the same fabric.
        flat = TopologySpec("leafspine", k=2, capacity=100.0,
                            oversubscription=1.0).build()
        scaled = TopologySpec("leafspine", k=2, capacity=100.0,
                              oversubscription=2.0).build()
        assert flat.link("leaf0", "spine0").capacity != \
            scaled.link("leaf0", "spine0").capacity

    def test_default_oversubscription_means_no_oversubscription(self):
        # The spec default is the 0.0 sentinel = generator default (1:1);
        # the fattree-style 4:1 must be asked for explicitly.
        topo = TopologySpec("leafspine", k=2, capacity=100.0).build()
        assert topo.link("leaf0", "spine0").capacity == 100.0

    def test_non_square_leaves_and_spines(self):
        topo = TopologySpec("leafspine", leaves=4, spines=2,
                            hosts_per_switch=3, oversubscription=1.0).build()
        assert len(topo.switches_with_role("leaf")) == 4
        assert len(topo.switches_with_role("spine")) == 2
        assert len(topo.hosts) == 12

    def test_seed_rejected(self):
        with pytest.raises(ExperimentError, match="seed"):
            TopologySpec("leafspine", k=2, seed=1).build()

    def test_k_rejected_when_leaves_and_spines_both_explicit(self):
        # With both leaves and spines set, a non-default k would be silently
        # dropped: two distinct cache keys, one network.
        with pytest.raises(ExperimentError, match="'k'"):
            TopologySpec("leafspine", k=8, leaves=4, spines=4).build()

    def test_default_k_tolerated_alongside_explicit_shape(self):
        topo = TopologySpec("leafspine", leaves=4, spines=2).build()
        assert len(topo.switches_with_role("leaf")) == 4


class TestAbileneFamily:
    def test_capacity_and_hosts_applied(self):
        topo = TopologySpec("abilene", capacity=64.0, hosts_per_switch=2).build()
        assert len(topo.hosts) == 2 * len(topo.switches)
        backbone = [l for l in topo.links if topo.is_switch(l.src) and topo.is_switch(l.dst)]
        assert all(link.capacity == 64.0 for link in backbone)

    def test_oversubscription_rejected(self):
        with pytest.raises(ExperimentError, match="oversubscription"):
            TopologySpec("abilene", oversubscription=2.0).build()


class TestZooFamily:
    @pytest.mark.parametrize("name,switches", [("nsfnet", 15), ("geant_small", 13),
                                               ("ring8", 8)])
    def test_builtin_wans_build_with_hosts(self, name, switches):
        topo = TopologySpec("zoo", name=name, hosts_per_switch=1,
                            capacity=50.0).build()
        assert len(topo.switches) == switches
        assert len(topo.hosts) == switches
        backbone = [l for l in topo.links if topo.is_switch(l.src) and topo.is_switch(l.dst)]
        assert all(link.capacity == 50.0 for link in backbone)

    def test_name_required(self):
        with pytest.raises(ExperimentError, match="name"):
            TopologySpec("zoo").build()

    def test_unknown_builtin_rejected(self):
        from repro.exceptions import TopologyError
        with pytest.raises(TopologyError):
            TopologySpec("zoo", name="internet2-of-thrones").build()

    def test_seed_rejected(self):
        with pytest.raises(ExperimentError, match="seed"):
            TopologySpec("zoo", name="ring8", seed=5).build()

    def test_latency_applied_to_edge_list_wans(self):
        topo = TopologySpec("zoo", name="ring8", latency=0.3).build()
        assert all(link.latency == 0.3 for link in topo.links)

    def test_latency_rejected_for_zoo_abilene(self):
        # abilene has per-link scaled latencies, not one default; accepting
        # the field would silently drop it (distinct cache keys, same net).
        with pytest.raises(ExperimentError, match="latency"):
            TopologySpec("zoo", name="abilene", latency=0.3).build()

    def test_builtin_topology_rejects_abilene_default_latency(self):
        # The guard lives in zoo.py itself, not only in TopologySpec.
        from repro.exceptions import TopologyError
        from repro.topology.zoo import builtin_topology
        with pytest.raises(TopologyError, match="default_latency"):
            builtin_topology("abilene", default_latency=0.3)

    def test_zoo_abilene_capacity_applied(self):
        topo = TopologySpec("zoo", name="abilene", capacity=64.0).build()
        backbone = [l for l in topo.links
                    if topo.is_switch(l.src) and topo.is_switch(l.dst)]
        assert all(link.capacity == 64.0 for link in backbone)


class TestUnknownFieldsAndFamilies:
    def test_unknown_family_rejected(self):
        with pytest.raises(ExperimentError):
            TopologySpec("moebius").build()

    def test_leaves_rejected_outside_leafspine(self):
        with pytest.raises(ExperimentError, match="leaves"):
            TopologySpec("random", size=6, leaves=2).build()

    def test_name_rejected_outside_zoo(self):
        with pytest.raises(ExperimentError, match="name"):
            TopologySpec("fattree", name="nsfnet").build()
