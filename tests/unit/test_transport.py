"""Unit tests for the cwnd-based transport subsystem.

Covers the sender congestion-control state machine (slow start, AIMD, fast
retransmit, RTO collapse, pacing intervals), the receiver's O(window) seq
pruning, the goodput-vs-throughput delivery accounting, and the host-level
state cleanup (stream dicts and completed-sender RTO timers).
"""

import pytest

from repro.exceptions import SimulationError
from repro.simulator import (
    DATA_PACKET_BYTES,
    Flow,
    Network,
    Packet,
    PacketKind,
    ReceiverState,
    SenderState,
    StatsCollector,
    TRANSPORT_MODES,
)
from repro.baselines import ShortestPathSystem
from repro.topology import leafspine


def make_sender(transport, size=1000, window=16, rto=5.0):
    return SenderState(Flow("a", "b", size, 0.0), window=window, rto=rto,
                       transport=transport)


class TestSenderCongestionControl:
    def test_unknown_transport_rejected(self):
        with pytest.raises(ValueError):
            make_sender("reno-vegas-hybrid")

    def test_fixed_mode_opens_full_window_immediately(self):
        sender = make_sender("fixed", window=8)
        assert sender.effective_window == 8
        sent = 0
        while sender.can_send():
            sender.next_seq += 1
            sent += 1
        assert sent == 8

    def test_slowstart_opens_one_segment(self):
        sender = make_sender("slowstart", window=8)
        assert sender.effective_window == 1

    def test_slowstart_doubles_per_acked_window(self):
        sender = make_sender("slowstart")
        # ACK one full cwnd at each step: exponential growth (1, 2, 4, 8...).
        for expected in (2, 4, 8, 16):
            acked = sender.effective_window
            sender.next_seq = sender.cumulative_ack + acked
            sender.on_ack(sender.cumulative_ack + acked, now=1.0)
            assert sender.effective_window == expected

    def test_cwnd_capped_by_configured_window(self):
        sender = make_sender("slowstart", window=8)
        for _ in range(10):                     # far past the cap
            acked = sender.effective_window
            sender.next_seq = sender.cumulative_ack + acked
            sender.on_ack(sender.cumulative_ack + acked, now=1.0)
        assert sender.cwnd == 8.0
        assert sender.effective_window == 8
        assert sender.max_cwnd == 8.0

    def test_ack_jump_past_next_seq_clamps_in_flight(self):
        # RTO rewind, one resend fills the hole, the receiver's cached tail
        # jumps the cumulative ACK past next_seq: in_flight must not go
        # negative (which would re-send already-ACKed segments).
        sender = make_sender("slowstart")
        sender.cwnd = 8.0
        sender.next_seq = 8
        sender.retransmit(now=10.0)             # next_seq rewinds to 0
        sender.next_seq = 1                     # the single resend
        sender.on_ack(8, now=11.0)              # ACK jumps past next_seq
        assert sender.next_seq == 8
        assert sender.in_flight == 0

    def test_congestion_avoidance_grows_linearly(self):
        sender = make_sender("slowstart")
        sender.cwnd = 10.0
        sender.ssthresh = 10.0                  # at/above threshold: AIMD
        sender.next_seq = 10
        sender.on_ack(10, now=1.0)              # 10 segments ACKed: +~1 total
        assert sender.cwnd == pytest.approx(11.0)

    def test_timeout_collapses_cwnd_and_halves_ssthresh(self):
        sender = make_sender("slowstart")
        sender.cwnd = 12.0
        sender.next_seq = 6
        sender.retransmit(now=10.0)
        assert sender.cwnd == 1.0
        assert sender.ssthresh == pytest.approx(6.0)
        assert sender.next_seq == sender.cumulative_ack
        assert sender.retransmissions == 1

    def test_fixed_mode_timeout_keeps_window(self):
        sender = make_sender("fixed", window=8)
        sender.next_seq = 6
        sender.retransmit(now=10.0)
        assert sender.effective_window == 8

    def test_triple_duplicate_ack_triggers_fast_retransmit_once(self):
        sender = make_sender("slowstart")
        sender.cwnd = 8.0
        sender.next_seq = 8
        assert not sender.on_duplicate_ack(0)
        assert not sender.on_duplicate_ack(0)
        assert sender.on_duplicate_ack(0)       # the third one fires
        assert sender.cwnd == pytest.approx(4.0)
        assert sender.fast_retransmits == 1
        # Further duplicates do not re-trigger until progress resets the count.
        assert not sender.on_duplicate_ack(0)
        sender.on_ack(4, now=2.0)
        assert sender.dup_acks == 0

    def test_stale_reordered_acks_do_not_count_as_duplicates(self):
        # An overtaken ACK (ack_seq below the cumulative ACK) says nothing
        # about loss; only an ACK for exactly the current cumulative value
        # counts toward the fast-retransmit trigger.
        sender = make_sender("slowstart")
        sender.cwnd = 8.0
        sender.next_seq = 8
        sender.on_ack(4, now=1.0)
        for _ in range(5):
            assert not sender.on_duplicate_ack(2)   # stale, reordered
        assert sender.dup_acks == 0
        assert sender.fast_retransmits == 0

    def test_fixed_mode_never_fast_retransmits(self):
        sender = make_sender("fixed")
        sender.next_seq = 8
        for _ in range(10):
            assert not sender.on_duplicate_ack(0)
        assert sender.fast_retransmits == 0

    def test_max_cwnd_tracks_peak(self):
        sender = make_sender("slowstart")
        sender.next_seq = 4
        sender.on_ack(4, now=1.0)               # slow start: cwnd 1 -> 5
        peak = sender.cwnd
        sender.next_seq = 8
        sender.retransmit(now=20.0)             # collapse to 1
        assert sender.max_cwnd == pytest.approx(peak)

    def test_rtt_estimation_and_pacing_interval(self):
        sender = make_sender("paced")
        sender.note_sent(0, now=1.0)
        sender.next_seq = 1
        sender.on_ack(1, now=1.8)
        assert sender.srtt == pytest.approx(0.8)
        sender.cwnd = 4.0
        assert sender.pacing_interval() == pytest.approx(0.8 / 4.0)

    def test_retransmitted_segment_never_sampled(self):
        sender = make_sender("paced")
        sender.note_sent(0, now=1.0)
        sender.next_seq = 1
        sender.retransmit(now=6.0)              # Karn: discard the pending sample
        # The go-back-N resend of seq 0 must not arm a fresh sample either —
        # its ACK may belong to the original copy still in flight.
        sender.note_sent(0, now=6.0)
        sender.next_seq = 1
        sender.on_ack(1, now=7.0)
        assert sender.srtt is None


class TestPerFlowRto:
    def _ack_with_rtt(self, sender, rtt, now):
        """Send one new segment at ``now`` and ACK it ``rtt`` later."""
        seq = sender.next_seq
        sender.note_sent(seq, now=now)
        sender.next_seq = seq + 1
        sender.on_ack(seq + 1, now=now + rtt)

    def test_no_sample_means_host_constant(self):
        sender = make_sender("slowstart", rto=5.0)
        assert sender.current_rto() == 5.0

    def test_fixed_mode_always_uses_host_constant(self):
        sender = make_sender("fixed", rto=5.0)
        self._ack_with_rtt(sender, rtt=0.4, now=1.0)
        assert sender.srtt is not None
        assert sender.current_rto() == 5.0

    def test_rto_derives_from_srtt_and_rttvar(self):
        sender = make_sender("slowstart", rto=5.0)
        self._ack_with_rtt(sender, rtt=0.8, now=1.0)
        # RFC 6298 init: srtt = 0.8, rttvar = 0.4 -> rto = 0.8 + 4*0.4 = 2.4.
        assert sender.srtt == pytest.approx(0.8)
        assert sender.rttvar == pytest.approx(0.4)
        assert sender.current_rto() == pytest.approx(2.4)

    def test_rto_floored_at_one_millisecond(self):
        sender = make_sender("slowstart", rto=5.0)
        self._ack_with_rtt(sender, rtt=0.1, now=1.0)
        # srtt + 4*rttvar = 0.3 in the scaled regime; the floor holds it at 1.
        assert sender.current_rto() == pytest.approx(1.0)

    def test_rto_capped_at_host_constant(self):
        sender = make_sender("slowstart", rto=5.0)
        self._ack_with_rtt(sender, rtt=10.0, now=1.0)
        assert sender.current_rto() == 5.0

    def test_rttvar_tracks_deviation(self):
        sender = make_sender("slowstart", rto=50.0)
        self._ack_with_rtt(sender, rtt=1.0, now=0.0)
        stable_var = sender.rttvar
        self._ack_with_rtt(sender, rtt=4.0, now=10.0)
        assert sender.rttvar > stable_var

    def test_backoff_doubles_per_rto_and_resets_on_progress(self):
        sender = make_sender("slowstart", rto=50.0)
        self._ack_with_rtt(sender, rtt=2.0, now=1.0)
        base = sender.current_rto()
        sender.next_seq = sender.cumulative_ack + 2
        sender.retransmit(now=20.0)
        assert sender.current_rto() == pytest.approx(2.0 * base)
        sender.retransmit(now=40.0)
        assert sender.current_rto() == pytest.approx(4.0 * base)
        sender.on_ack(sender.cumulative_ack + 1, now=41.0)
        assert sender.current_rto() <= base

    def test_fixed_mode_backoff_never_engages(self):
        sender = make_sender("fixed", rto=5.0)
        sender.next_seq = 4
        sender.retransmit(now=20.0)
        sender.retransmit(now=40.0)
        assert sender.current_rto() == 5.0

    def test_timeout_expires_at_the_per_flow_rto(self):
        sender = make_sender("slowstart", rto=5.0)
        self._ack_with_rtt(sender, rtt=0.1, now=0.0)   # rto floored to 1.0
        sender.next_seq = sender.cumulative_ack + 1    # one segment in flight
        # Progress happened at 0.1; at 1.05 the per-flow RTO (1.0) has not
        # elapsed yet, at 1.2 it has — long before the host constant (5.0).
        assert not sender.timeout_expired(1.05)
        assert sender.timeout_expired(1.2)

    def test_fixed_mode_timeout_still_waits_host_constant(self):
        sender = make_sender("fixed", rto=5.0)
        sender.note_sent(0, now=0.0)
        sender.next_seq = 1
        assert not sender.timeout_expired(4.9)
        assert sender.timeout_expired(5.0)

    def test_first_check_armed_at_floor_in_cwnd_modes(self):
        # The first timeout check fires at the RTO floor, so the flow's
        # *first* loss is already detected at the per-flow RTO once an RTT
        # sample exists — not after the host constant.
        assert make_sender("slowstart", rto=5.0).first_check_delay() == 1.0
        assert make_sender("paced", rto=5.0).first_check_delay() == 1.0
        assert make_sender("fixed", rto=5.0).first_check_delay() == 5.0
        # A host constant below the floor still wins (never check later
        # than the old schedule would have).
        assert make_sender("slowstart", rto=0.5).first_check_delay() == 0.5


class TestReceiverPruning:
    def test_in_order_delivery_keeps_no_state(self):
        receiver = ReceiverState(1, "a")
        for seq in range(1000):
            receiver.on_data(seq, 2000)
        # Every seq below the cumulative ACK is pruned: O(window), not O(flow).
        assert receiver.received == set()
        assert receiver.cumulative_ack == 1000

    def test_out_of_order_window_is_retained_then_pruned(self):
        receiver = ReceiverState(1, "a")
        for seq in (1, 2, 3):                   # hole at 0
            receiver.on_data(seq, 10)
        assert receiver.received == {1, 2, 3}
        receiver.on_data(0, 10)                 # hole filled: everything prunes
        assert receiver.received == set()
        assert receiver.cumulative_ack == 4

    def test_duplicate_below_cumulative_not_retained(self):
        receiver = ReceiverState(1, "a")
        for seq in range(5):
            receiver.on_data(seq, 10)
        assert receiver.on_data(2, 10) == 5     # go-back-N duplicate
        assert receiver.received == set()

    def test_has_seen_distinguishes_first_time_from_duplicate(self):
        receiver = ReceiverState(1, "a")
        assert not receiver.has_seen(0)
        receiver.on_data(0, 10)
        assert receiver.has_seen(0)             # below cumulative
        receiver.on_data(3, 10)
        assert receiver.has_seen(3)             # cached out-of-order
        assert not receiver.has_seen(2)


class TestGoodputAccounting:
    def packet(self, seq=0):
        return Packet(kind=PacketKind.DATA, src_host="a", dst_host="b",
                      flow_id=1, seq=seq, size_bytes=DATA_PACKET_BYTES)

    def test_duplicates_split_goodput_from_throughput(self):
        stats = StatsCollector(throughput_bin_ms=1.0)
        stats.record_delivery(self.packet(0), 0.2)
        stats.record_delivery(self.packet(1), 0.4)
        stats.record_delivery(self.packet(1), 0.6, duplicate=True)
        assert stats.goodput_bytes == 2 * DATA_PACKET_BYTES
        assert stats.delivered_bytes == 3 * DATA_PACKET_BYTES
        assert stats.duplicate_deliveries == 1
        assert stats.goodput_bytes < stats.delivered_bytes

    def test_throughput_series_counts_unique_deliveries_only(self):
        stats = StatsCollector(throughput_bin_ms=1.0)
        stats.record_delivery(self.packet(0), 0.2)
        stats.record_delivery(self.packet(0), 0.7, duplicate=True)
        stats.record_delivery(self.packet(1), 1.5)
        series = dict(stats.throughput_series())
        assert series[0.0] == pytest.approx(1.0)   # the duplicate is excluded
        assert series[1.0] == pytest.approx(1.0)

    def test_summary_carries_transport_fields(self):
        stats = StatsCollector()
        stats.register_flow(1, "a", "b", 10, 0.0)
        stats.record_retransmission(1)
        stats.record_retransmission(1, fast=True)
        stats.record_transport(1, final_cwnd=5.0, max_cwnd=9.0)
        summary = stats.summary()
        assert summary["retransmissions"] == 2
        assert summary["fast_retransmits"] == 1
        assert summary["mean_max_cwnd"] == pytest.approx(9.0)
        assert summary["goodput_bytes"] <= summary["delivered_bytes"]
        per_flow = stats.per_flow_transport()
        assert per_flow == [{"flow_id": 1, "retransmissions": 2,
                             "fast_retransmits": 1, "final_cwnd": 5.0,
                             "max_cwnd": 9.0}]


def tiny_network(transport="fixed"):
    return Network(leafspine(2, 2, hosts_per_leaf=1), ShortestPathSystem(),
                   buffer_packets=50, host_window=8, host_rto=2.0,
                   transport=transport)


class TestHostStateCleanup:
    def test_unknown_transport_mode_rejected_by_network(self):
        with pytest.raises(SimulationError):
            tiny_network(transport="warp-speed")

    @pytest.mark.parametrize("transport", TRANSPORT_MODES)
    def test_sender_state_dropped_on_completion(self, transport):
        net = tiny_network(transport)
        net.schedule_flows([Flow("h0_0", "h1_0", 20, 0.1)])
        stats = net.run(30.0)
        assert stats.completion_ratio() == 1.0
        assert net.hosts["h0_0"]._senders == {}

    def test_completed_flow_stops_rescheduling_rto_timers(self):
        net = tiny_network()
        net.schedule_flows([Flow("h0_0", "h1_0", 4, 0.1)])
        net.run(10.0)
        # One pending self-rescheduled timer at most drains on the next check;
        # after it fires nothing re-arms, so a long quiet run ends with an
        # empty event queue (the timer chain died with the sender state).
        net.sim.run(until=100.0)
        assert net.sim.pending_events == 0

    def test_stream_state_dropped_after_stream_ends(self):
        net = tiny_network()
        net.sim.call_at(0.5, net.hosts["h0_0"].start_constant_stream,
                        "h1_0", 5.0, 3.0)
        net.run(10.0)
        assert net.hosts["h0_0"]._streams == {}

    def test_completed_flow_reports_cwnd_summary(self):
        net = tiny_network("slowstart")
        net.schedule_flows([Flow("h0_0", "h1_0", 50, 0.1)])
        stats = net.run(60.0)
        record = next(iter(stats.flows.values()))
        assert record.completed
        assert record.max_cwnd >= record.final_cwnd > 0
        assert stats.summary()["mean_max_cwnd"] > 1.0
