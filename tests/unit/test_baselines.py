"""Unit tests for the baseline routing systems (ECMP, shortest path, Hula, SPAIN)."""

import pytest

from repro.baselines import (
    EcmpSystem,
    HulaSystem,
    ShortestPathSystem,
    SpainSystem,
    compute_spain_paths,
)
from repro.simulator import Flow, Network
from repro.topology import abilene, fattree, leafspine
from repro.workloads import generate_workload, uniform_distribution


def run_network(topology, system, flows, duration=40.0, **net_kwargs):
    network = Network(topology, system, **net_kwargs)
    network.schedule_flows(flows)
    stats = network.run(duration)
    return network, stats


class TestEcmp:
    def test_next_hops_on_fattree_use_all_uplinks(self):
        topo = fattree(4)
        system = EcmpSystem()
        network = Network(topo, system)
        hops = system.next_hops("e0_0", "e3_1")
        assert set(hops) == {"a0_0", "a0_1"}

    def test_single_path_topology_has_one_hop(self):
        topo = abilene(hosts_per_switch=0)
        # add two hosts so Network builds, but ECMP table is about switches
        topo2 = abilene(hosts_per_switch=1)
        system = EcmpSystem()
        Network(topo2, system)
        assert len(system.next_hops("SEA", "NYC")) >= 1

    def test_flows_complete_on_leafspine(self):
        topo = leafspine(2, 2, hosts_per_leaf=2, capacity=50.0)
        spec = generate_workload(topo, uniform_distribution(1, 8), load=0.4,
                                 duration=10.0, host_capacity=50.0, seed=0)
        _, stats = run_network(topo, EcmpSystem(), spec.flows)
        assert stats.completion_ratio() == 1.0

    def test_same_flow_uses_consistent_next_hop(self):
        topo = fattree(4)
        system = EcmpSystem()
        network = Network(topo, system)
        from repro.simulator.packet import Packet, PacketKind
        packet = Packet(kind=PacketKind.DATA, src_host="h0_0_0", dst_host="h3_1_1",
                        flow_id=42, dst_switch="e3_1")
        logic = network.switches["e0_0"].routing
        choices = {logic.on_data_packet(packet, "h0_0_0") for _ in range(10)}
        assert len(choices) == 1

    def test_failed_uplink_is_avoided(self):
        topo = fattree(4)
        system = EcmpSystem()
        network = Network(topo, system)
        network.fail_link("e0_0", "a0_0", at_time=0.0)
        network.sim.run(until=0.1)
        from repro.simulator.packet import Packet, PacketKind
        packet = Packet(kind=PacketKind.DATA, src_host="h0_0_0", dst_host="h3_1_1",
                        flow_id=1, dst_switch="e3_1")
        assert network.switches["e0_0"].routing.on_data_packet(packet, "h0_0_0") == "a0_1"


class TestShortestPath:
    def test_uses_single_next_hop(self):
        topo = fattree(4)
        system = ShortestPathSystem()
        Network(topo, system)
        assert len(system.next_hops("e0_0", "e3_1")) == 1

    def test_flows_complete_on_abilene(self):
        topo = abilene(capacity=50.0, hosts_per_switch=1)
        spec = generate_workload(topo, uniform_distribution(1, 5), load=0.3,
                                 duration=10.0, host_capacity=50.0, seed=1)
        _, stats = run_network(topo, ShortestPathSystem(), spec.flows, duration=80.0)
        assert stats.completion_ratio() == 1.0


class TestHula:
    def test_probes_build_best_hop_tables(self):
        topo = leafspine(2, 2, hosts_per_leaf=1, capacity=50.0)
        system = HulaSystem(probe_period=0.2)
        network = Network(topo, system)
        network.run(2.0)
        logic = system.logic("leaf0")
        assert "leaf1" in logic.best
        assert logic.best["leaf1"].next_hop in ("spine0", "spine1")

    def test_probes_restricted_to_shortest_path_dag(self):
        topo = fattree(4)
        system = HulaSystem(probe_period=0.25)
        network = Network(topo, system)
        network.run(1.0)
        # A core switch's best hop towards an edge origin is always one of the
        # aggregation switches in that pod (a shortest-path predecessor).
        core_logic = system.logic("c0")
        assert core_logic.best["e0_0"].next_hop in ("a0_0",)

    def test_flows_complete(self):
        topo = fattree(4, capacity=50.0)
        spec = generate_workload(topo, uniform_distribution(1, 10), load=0.5,
                                 duration=10.0, host_capacity=50.0, seed=2)
        _, stats = run_network(topo, HulaSystem(probe_period=0.25), spec.flows, duration=60.0)
        assert stats.completion_ratio() > 0.95

    def test_failure_detection_reroutes(self):
        topo = leafspine(2, 2, hosts_per_leaf=1, capacity=50.0)
        system = HulaSystem(probe_period=0.2, failure_periods=3)
        network = Network(topo, system)
        network.fail_link("spine0", "leaf1", at_time=1.0)
        network.run(5.0)
        logic = system.logic("leaf0")
        assert logic.best["leaf1"].next_hop == "spine1"

    def test_probe_overhead_accounted(self):
        topo = leafspine(2, 2, hosts_per_leaf=1, capacity=50.0)
        system = HulaSystem(probe_period=0.2)
        network = Network(topo, system)
        network.run(2.0)
        assert network.stats.probe_bytes > 0


class TestSpain:
    def test_path_sets_avoid_overlap_when_possible(self):
        topo = leafspine(2, 2, hosts_per_leaf=0, capacity=10.0)
        paths = compute_spain_paths(topo, k=2)
        pair_paths = paths[("leaf0", "leaf1")]
        assert len(pair_paths) == 2
        # The two paths use different spines.
        spines_used = {p[1] for p in pair_paths}
        assert spines_used == {"spine0", "spine1"}

    def test_paths_are_valid_walks(self):
        topo = abilene(hosts_per_switch=0)
        paths = compute_spain_paths(topo, k=3)
        for (src, dst), options in paths.items():
            for path in options:
                assert path[0] == src and path[-1] == dst
                for a, b in zip(path, path[1:]):
                    assert topo.has_link(a, b)

    def test_flows_complete_on_abilene(self):
        topo = abilene(capacity=50.0, hosts_per_switch=1)
        spec = generate_workload(topo, uniform_distribution(1, 6), load=0.3,
                                 duration=10.0, host_capacity=50.0, seed=3)
        _, stats = run_network(topo, SpainSystem(), spec.flows, duration=80.0)
        assert stats.completion_ratio() == 1.0

    def test_different_flows_spread_across_paths(self):
        topo = leafspine(2, 2, hosts_per_leaf=1, capacity=10.0)
        system = SpainSystem(k=2)
        network = Network(topo, system)
        from repro.simulator.packet import Packet, PacketKind
        chosen = set()
        for flow_id in range(16):
            packet = Packet(kind=PacketKind.DATA, src_host="h0_0", dst_host="h1_0",
                            flow_id=flow_id, dst_switch="leaf1")
            hop = network.switches["leaf0"].routing.on_data_packet(packet, "h0_0")
            chosen.add(hop)
        assert chosen == {"spine0", "spine1"}

    def test_failed_path_falls_back_to_alternative(self):
        topo = leafspine(2, 2, hosts_per_leaf=1, capacity=10.0)
        system = SpainSystem(k=2)
        network = Network(topo, system)
        network.fail_link("spine0", "leaf1", at_time=0.0)
        network.fail_link("leaf0", "spine0", at_time=0.0)
        network.sim.run(until=0.1)
        from repro.simulator.packet import Packet, PacketKind
        for flow_id in range(8):
            packet = Packet(kind=PacketKind.DATA, src_host="h0_0", dst_host="h1_0",
                            flow_id=flow_id, dst_switch="leaf1")
            hop = network.switches["leaf0"].routing.on_data_packet(packet, "h0_0")
            assert hop == "spine1"
