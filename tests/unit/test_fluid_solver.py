"""Property and unit tests for the fluid-plane building blocks.

Everything here is pure Python — :func:`max_min_rates`, the
:class:`HyperLogLog` sketch and :class:`FluidStats` import no numpy — so the
no-numpy CI job exercises this file too (ARCHITECTURE.md §7).

The solver's contract (its docstring, tested property by property):

* **feasible** — per-link weighted consumption never exceeds capacity;
* **max-min fair** — every group is either frozen at its rate cap or has a
  saturated bottleneck link on which no other group gets a higher rate;
* **exactly permutation-invariant** — feeding any insertion order of the
  same groups produces bit-identical floats.
"""

import math
import random

from hypothesis import given, settings, strategies as st

from repro.simulator.accumulators import HyperLogLog
from repro.simulator.fluid import FluidStats, max_min_rates


# =============================================================================
# Problem generator
# =============================================================================

@st.composite
def fluid_problems(draw):
    """A random small network: capacities, group paths, weights, caps."""
    link_count = draw(st.integers(min_value=1, max_value=6))
    capacities = {
        f"l{i}": draw(st.floats(min_value=0.5, max_value=100.0,
                                allow_nan=False, allow_infinity=False))
        for i in range(link_count)
    }
    links = sorted(capacities)
    group_count = draw(st.integers(min_value=1, max_value=8))
    paths = {}
    weights = {}
    caps = {}
    for g in range(group_count):
        path = draw(st.lists(st.sampled_from(links), min_size=1,
                             max_size=link_count, unique=True))
        paths[f"g{g}"] = tuple(path)
        weights[f"g{g}"] = draw(st.integers(min_value=1, max_value=5))
        if draw(st.booleans()):
            caps[f"g{g}"] = draw(st.floats(min_value=0.01, max_value=50.0,
                                           allow_nan=False, allow_infinity=False))
    return paths, capacities, weights, caps


def link_loads(paths, weights, rates):
    loads = {}
    for key, path in paths.items():
        for link in path:
            loads[link] = loads.get(link, 0.0) + weights[key] * rates[key]
    return loads


# =============================================================================
# Solver properties
# =============================================================================

class TestMaxMinProperties:
    @given(fluid_problems())
    @settings(max_examples=200, deadline=None)
    def test_rates_are_feasible(self, problem):
        paths, capacities, weights, caps = problem
        rates = max_min_rates(paths, capacities, weights, caps)
        assert set(rates) == set(paths)
        for key, rate in rates.items():
            assert rate >= 0.0
            if key in caps:
                assert rate <= caps[key] * (1 + 1e-12)
        for link, load in link_loads(paths, weights, rates).items():
            assert load <= capacities[link] * (1 + 1e-9) + 1e-9

    @given(fluid_problems())
    @settings(max_examples=200, deadline=None)
    def test_every_group_has_a_maxmin_certificate(self, problem):
        """Kleinberg's bottleneck condition: a group not frozen at its cap
        must cross a saturated link on which it gets the (joint) highest
        rate — otherwise its rate could be raised by lowering a richer
        group's, and the allocation would not be max-min."""
        paths, capacities, weights, caps = problem
        rates = max_min_rates(paths, capacities, weights, caps)
        loads = link_loads(paths, weights, rates)
        rate_scale = max(1.0, *rates.values())
        for key, rate in rates.items():
            if key in caps and rate >= caps[key] - 1e-9 * rate_scale:
                continue  # frozen at its own ceiling
            bottlenecked = False
            for link in paths[key]:
                residual = capacities[link] - loads[link]
                if residual > 1e-8 * max(1.0, capacities[link]):
                    continue  # link not saturated
                peak = max(rates[other] for other, path in paths.items()
                           if link in path)
                if rate >= peak - 1e-9 * rate_scale:
                    bottlenecked = True
                    break
            assert bottlenecked, (key, rate, rates, loads)

    @given(fluid_problems(), st.randoms(use_true_random=False))
    @settings(max_examples=200, deadline=None)
    def test_result_is_exactly_permutation_invariant(self, problem, rng):
        paths, capacities, weights, caps = problem
        baseline = max_min_rates(paths, capacities, weights, caps)
        keys = list(paths)
        rng.shuffle(keys)
        shuffled = max_min_rates({k: paths[k] for k in keys},
                                 capacities,
                                 {k: weights[k] for k in reversed(keys)},
                                 {k: caps[k] for k in keys if k in caps})
        # Bit-identical, not approximately equal: the engine's byte-stability
        # contract rides on this.
        assert shuffled == baseline

    @given(fluid_problems())
    @settings(max_examples=100, deadline=None)
    def test_weights_scale_consumption_not_rate(self, problem):
        """All unfrozen groups rise at the same *rate* level; a weight-w
        group just consumes w times as much. Doubling every weight therefore
        halves every uncapped rate on a saturated network of one link."""
        paths, capacities, weights, caps = problem
        if caps:
            return  # caps break the pure scaling relation
        one_link = {key: (path[0],) for key, path in paths.items()}
        shared = {link: 10.0 for link in {p[0] for p in one_link.values()}}
        base = max_min_rates(one_link, shared, weights)
        doubled = max_min_rates(one_link, shared,
                                {k: 2 * w for k, w in weights.items()})
        for key in base:
            assert math.isclose(doubled[key], base[key] / 2.0, rel_tol=1e-12)


class TestMaxMinCases:
    def test_single_link_fair_share(self):
        rates = max_min_rates({"a": ("l",), "b": ("l",)}, {"l": 10.0})
        assert rates == {"a": 5.0, "b": 5.0}

    def test_weighted_share_is_equal_rate(self):
        rates = max_min_rates({"a": ("l",), "b": ("l",)}, {"l": 8.0},
                              weights={"a": 3, "b": 1})
        assert rates == {"a": 2.0, "b": 2.0}

    def test_cap_releases_headroom_to_others(self):
        rates = max_min_rates({"a": ("l",), "b": ("l",)}, {"l": 10.0},
                              rate_caps={"a": 1.0})
        assert rates == {"a": 1.0, "b": 9.0}

    def test_chain_bottleneck(self):
        rates = max_min_rates({"long": ("thin", "fat"), "short": ("fat",)},
                              {"thin": 2.0, "fat": 10.0})
        assert rates == {"long": 2.0, "short": 8.0}

    def test_empty_path_rejected(self):
        try:
            max_min_rates({"a": ()}, {})
        except ValueError as error:
            assert "empty path" in str(error)
        else:
            raise AssertionError("empty path must be rejected")

    def test_non_positive_weight_rejected(self):
        try:
            max_min_rates({"a": ("l",)}, {"l": 1.0}, weights={"a": 0})
        except ValueError as error:
            assert "non-positive weight" in str(error)
        else:
            raise AssertionError("zero weight must be rejected")


# =============================================================================
# HyperLogLog sketch
# =============================================================================

class TestHyperLogLog:
    def test_estimate_tracks_true_cardinality(self):
        sketch = HyperLogLog()
        for item in range(10_000):
            sketch.add(("flow", item))
        assert abs(sketch.estimate() - 10_000) / 10_000 < 0.05

    def test_duplicates_never_move_the_estimate(self):
        once, repeated = HyperLogLog(), HyperLogLog()
        for item in range(500):
            once.add(item)
            for _ in range(7):
                repeated.add(item)
        assert repeated.estimate() == once.estimate()

    def test_insertion_order_is_irrelevant(self):
        forward, backward = HyperLogLog(), HyperLogLog()
        items = [f"flow-{i}" for i in range(2_000)]
        for item in items:
            forward.add(item)
        for item in reversed(items):
            backward.add(item)
        assert forward.estimate() == backward.estimate()

    def test_merge_equals_sketch_of_union(self):
        left, right, union = HyperLogLog(), HyperLogLog(), HyperLogLog()
        for item in range(0, 3_000):
            left.add(item)
            union.add(item)
        for item in range(1_500, 4_500):
            right.add(item)
            union.add(item)
        left.merge(right)
        assert left.estimate() == union.estimate()

    def test_precision_bounds_enforced(self):
        for bad in (3, 17):
            try:
                HyperLogLog(precision=bad)
            except ValueError:
                pass
            else:
                raise AssertionError(f"precision {bad} must be rejected")


# =============================================================================
# FluidStats summary-extension opt-in
# =============================================================================

class TestFluidStatsExtensions:
    def _collect(self, **kwargs):
        stats = FluidStats(**kwargs)
        for fct in (1.0, 2.0, 3.0, 10.0):
            stats.note_flow()
            stats.note_completion(fct)
        stats.record_switch_flow("agg0", 1)
        stats.record_switch_flow("agg0", 2)
        stats.record_switch_flow("edge0", 1)
        return stats.summary()

    def test_extensions_absent_at_defaults(self):
        summary = self._collect()
        assert "p50_fct_ms" not in summary
        assert not any(key.startswith("flow_sketch") for key in summary)

    def test_percentiles_and_sketch_opt_in(self):
        summary = self._collect(fct_percentiles=(50.0,), flow_sketch=True)
        assert summary["p50_fct_ms"] == 2.5
        assert summary["flow_sketch_switches"] == 2
        assert round(summary["flow_sketch_max_flows"]) == 2
        assert summary["flow_sketch_mean_flows"] > 0
