"""Unit tests for path regular expressions."""

import pytest
from hypothesis import given, strategies as st

from repro.core import regex as rx
from repro.exceptions import PolicyParseError

switch_ids = st.sampled_from(["A", "B", "C", "D", "W"])
paths = st.lists(switch_ids, min_size=0, max_size=6)


def regexes(depth: int = 3):
    """Strategy producing random path regexes of bounded depth."""
    leaf = st.one_of(
        switch_ids.map(rx.node),
        st.just(rx.any_node()),
        st.just(rx.Epsilon()),
    )

    def extend(children):
        return st.one_of(
            st.tuples(children, children).map(lambda pair: rx.concat(*pair)),
            st.tuples(children, children).map(lambda pair: rx.union(*pair)),
            children.map(rx.star),
        )

    return st.recursive(leaf, extend, max_leaves=depth * 3)


class TestParsing:
    @pytest.mark.parametrize("text", [
        "A", ".", "A B D", "A .*", ".* W .*", "A + B", "(A + B) C", "A .* B .* D",
        ".* (F1 + F2) .*", "S C E F D + S A E B D",
    ])
    def test_valid_patterns_parse(self, text):
        assert isinstance(rx.parse_regex(text), rx.PathRegex)

    def test_empty_string_rejected(self):
        with pytest.raises(PolicyParseError):
            rx.parse_regex("   ")

    def test_unbalanced_paren_rejected(self):
        with pytest.raises(PolicyParseError):
            rx.parse_regex("(A B")

    def test_bad_character_rejected(self):
        with pytest.raises(PolicyParseError):
            rx.parse_regex("A @ B")

    def test_dangling_plus_rejected(self):
        with pytest.raises(PolicyParseError):
            rx.parse_regex("A +")

    def test_star_binds_tighter_than_concat(self):
        pattern = rx.parse_regex("A B*")
        assert pattern.matches(["A"])
        assert pattern.matches(["A", "B", "B"])
        assert not pattern.matches(["A", "B", "A"])

    def test_union_binds_loosest(self):
        pattern = rx.parse_regex("A B + C")
        assert pattern.matches(["A", "B"])
        assert pattern.matches(["C"])
        assert not pattern.matches(["A", "C"])


class TestMatching:
    def test_single_node(self):
        assert rx.parse_regex("A").matches(["A"])
        assert not rx.parse_regex("A").matches(["B"])
        assert not rx.parse_regex("A").matches([])

    def test_wildcard_matches_any_single_node(self):
        dot = rx.parse_regex(".")
        assert dot.matches(["X"])
        assert not dot.matches(["X", "Y"])

    def test_concatenation(self):
        pattern = rx.parse_regex("A B D")
        assert pattern.matches(["A", "B", "D"])
        assert not pattern.matches(["A", "D"])
        assert not pattern.matches(["A", "B", "D", "D"])

    def test_waypoint_pattern(self):
        pattern = rx.parse_regex(".* W .*")
        assert pattern.matches(["W"])
        assert pattern.matches(["A", "W", "B"])
        assert pattern.matches(["W", "B"])
        assert not pattern.matches(["A", "B"])

    def test_source_prefix_pattern(self):
        pattern = rx.parse_regex("A .*")
        assert pattern.matches(["A"])
        assert pattern.matches(["A", "B", "C"])
        assert not pattern.matches(["B", "A"])

    def test_forbidden_subpath_pattern(self):
        pattern = rx.parse_regex(".* B A .*")
        assert pattern.matches(["B", "A"])
        assert pattern.matches(["S", "B", "A", "D"])
        assert not pattern.matches(["S", "A", "B", "D"])

    def test_union_of_concrete_paths(self):
        pattern = rx.parse_regex("S C E F D + S A E B D")
        assert pattern.matches(["S", "C", "E", "F", "D"])
        assert pattern.matches(["S", "A", "E", "B", "D"])
        assert not pattern.matches(["S", "C", "E", "B", "D"])

    def test_epsilon_matches_only_empty(self):
        assert rx.Epsilon().matches([])
        assert not rx.Epsilon().matches(["A"])

    def test_empty_set_matches_nothing(self):
        assert not rx.EmptySet().matches([])
        assert not rx.EmptySet().matches(["A"])

    def test_star_of_union(self):
        pattern = rx.parse_regex("(A + B)*")
        assert pattern.matches([])
        assert pattern.matches(["A", "B", "A"])
        assert not pattern.matches(["A", "C"])


class TestReversal:
    def test_concrete_path_reversal(self):
        pattern = rx.parse_regex("A B D")
        assert pattern.reverse().matches(["D", "B", "A"])
        assert not pattern.reverse().matches(["A", "B", "D"])

    def test_waypoint_reversal_symmetric(self):
        pattern = rx.parse_regex(".* W .*")
        assert pattern.reverse().matches(["X", "W", "Y"])

    def test_double_reverse_matches_original(self):
        pattern = rx.parse_regex("A (B + C)* D")
        assert pattern.reverse().reverse().matches(["A", "B", "C", "D"])
        assert not pattern.reverse().reverse().matches(["D", "A"])

    @given(regexes(), paths)
    def test_reverse_matches_reversed_words(self, pattern, word):
        assert pattern.matches(word) == pattern.reverse().matches(list(reversed(word)))

    @given(regexes(), paths)
    def test_double_reverse_is_identity_on_language(self, pattern, word):
        assert pattern.matches(word) == pattern.reverse().reverse().matches(word)


class TestStructure:
    def test_node_ids_collects_all_switches(self):
        pattern = rx.parse_regex("A (B + C)* .")
        assert pattern.node_ids() == {"A", "B", "C"}

    def test_smart_constructors_simplify(self):
        assert rx.concat(rx.Epsilon(), rx.node("A")) == rx.node("A")
        assert isinstance(rx.concat(rx.EmptySet(), rx.node("A")), rx.EmptySet)
        assert rx.union(rx.EmptySet(), rx.node("A")) == rx.node("A")
        assert rx.union(rx.node("A"), rx.node("A")) == rx.node("A")
        assert rx.star(rx.EmptySet()) == rx.Epsilon()
        assert rx.star(rx.star(rx.node("A"))) == rx.star(rx.node("A"))

    def test_equality_and_hash(self):
        a = rx.parse_regex("A B")
        b = rx.parse_regex("A B")
        assert a == b
        assert hash(a) == hash(b)
        assert a != rx.parse_regex("B A")

    def test_operator_sugar(self):
        pattern = rx.node("A") >> rx.node("B")
        assert pattern.matches(["A", "B"])
        alt = rx.node("A") + rx.node("B")
        assert alt.matches(["A"]) and alt.matches(["B"])

    def test_str_rendering(self):
        assert "A" in str(rx.parse_regex("A B*"))
        assert "*" in str(rx.parse_regex("A*"))

    def test_nullable(self):
        assert rx.parse_regex("A*").nullable()
        assert not rx.parse_regex("A").nullable()
        assert rx.parse_regex("A* + B").nullable()
