"""Unit tests for tools/lint_determinism.py (the determinism hazard linter)."""

import importlib.util
import textwrap
from pathlib import Path

import pytest

_SPEC = importlib.util.spec_from_file_location(
    "lint_determinism",
    Path(__file__).resolve().parents[2] / "tools" / "lint_determinism.py")
lint_determinism = importlib.util.module_from_spec(_SPEC)
_SPEC.loader.exec_module(lint_determinism)


def run_lint(tmp_path, source, name="sample.py"):
    target = tmp_path / name
    target.write_text(textwrap.dedent(source))
    return lint_determinism.lint([target])


class TestRules:
    def test_hash_builtin_flagged(self, tmp_path):
        violations, _ = run_lint(tmp_path, """\
            def bucket(name):
                return hash(name) % 16
            """)
        assert [v.rule for v in violations] == ["hash-builtin"]
        assert violations[0].line == 2

    def test_hash_inside_dunder_hash_exempt(self, tmp_path):
        violations, _ = run_lint(tmp_path, """\
            class Rank:
                def __hash__(self):
                    return hash(self._values)
            """)
        assert violations == []

    def test_unseeded_random_flagged(self, tmp_path):
        violations, _ = run_lint(tmp_path, """\
            import random
            def jitter():
                return random.random() + random.uniform(0, 1)
            """)
        assert [v.rule for v in violations] == ["unseeded-random"] * 2

    def test_seeded_rng_instance_allowed(self, tmp_path):
        violations, _ = run_lint(tmp_path, """\
            import random
            def jitter(rng: "random.Random"):
                return rng.random()
            """)
        assert violations == []

    def test_wall_clock_flagged_but_perf_counter_allowed(self, tmp_path):
        violations, _ = run_lint(tmp_path, """\
            import time
            from datetime import datetime
            def stamp():
                return time.time(), datetime.now(), time.perf_counter()
            """)
        assert sorted(v.rule for v in violations) == ["wall-clock", "wall-clock"]

    def test_set_iteration_flagged(self, tmp_path):
        violations, _ = run_lint(tmp_path, """\
            def visit(edges):
                for node in {a for a, _ in edges}:
                    print(node)
                for node in set(edges) | {None}:
                    print(node)
            """)
        assert [v.rule for v in violations] == ["set-iteration"] * 2

    def test_sorted_set_iteration_allowed(self, tmp_path):
        violations, _ = run_lint(tmp_path, """\
            def visit(edges):
                for node in sorted(set(edges)):
                    print(node)
            """)
        assert violations == []


class TestAllowlist:
    def test_allowlisted_finding_suppressed(self, tmp_path, monkeypatch):
        target = tmp_path / "audited.py"
        target.write_text("def f():\n    return hash('x')\n")
        rel = target.resolve().as_posix()
        monkeypatch.setitem(lint_determinism.ALLOWLIST, rel,
                            frozenset({"hash-builtin"}))
        violations, allowed = lint_determinism.lint([target])
        assert violations == []
        assert [f.rule for f in allowed] == ["hash-builtin"]

    def test_allowlist_only_covers_named_rules(self, tmp_path, monkeypatch):
        target = tmp_path / "audited.py"
        target.write_text("import random\n\ndef f():\n"
                          "    return hash('x') + random.random()\n")
        monkeypatch.setitem(lint_determinism.ALLOWLIST,
                            target.resolve().as_posix(),
                            frozenset({"hash-builtin"}))
        violations, allowed = lint_determinism.lint([target])
        assert [f.rule for f in violations] == ["unseeded-random"]
        assert [f.rule for f in allowed] == ["hash-builtin"]


class TestTreeAndCli:
    def test_repository_source_tree_is_clean(self):
        violations, _ = lint_determinism.lint([lint_determinism.DEFAULT_TARGET])
        assert violations == [], "\n".join(
            v.render(lint_determinism.REPO_ROOT) for v in violations)

    def test_main_exit_codes(self, tmp_path, capsys):
        clean = tmp_path / "clean.py"
        clean.write_text("x = 1\n")
        assert lint_determinism.main([str(clean)]) == 0
        assert "clean" in capsys.readouterr().out

        dirty = tmp_path / "dirty.py"
        dirty.write_text("def f():\n    return hash('x')\n")
        assert lint_determinism.main([str(dirty)]) == 1
        out = capsys.readouterr().out
        assert "hash-builtin" in out and "1 determinism hazard" in out

        assert lint_determinism.main([str(tmp_path / "missing.py")]) == 2
