"""Fail → recover epoch semantics of SimLink and Network.

The link's contract (ARCHITECTURE.md §2): ``fail()`` clears the queue and
bumps a fail epoch, so every packet in flight — serializing or propagating —
when the epoch changes is lost *even if the link recovers before its
scheduled delivery time*; traffic enqueued after ``recover()`` flows
normally.  ``Network.fail_link``/``recover_link`` schedule those transitions
and notify the adjacent routing logic.
"""

import pytest

from repro.simulator.engine import Simulator
from repro.simulator.link import SimLink
from repro.simulator.packet import DATA_PACKET_BYTES, Packet, PacketKind


def make_link(capacity=10.0, latency=0.5, buffer_packets=10):
    sim = Simulator()
    delivered = []
    link = SimLink(sim, "A", "B", capacity=capacity, latency=latency,
                   buffer_packets=buffer_packets,
                   deliver=lambda pkt, inport: delivered.append((sim.now, pkt)))
    return sim, link, delivered


def packet():
    return Packet(kind=PacketKind.DATA, src_host="h1", dst_host="h2",
                  size_bytes=DATA_PACKET_BYTES)


class TestFailRecoverEpochs:
    def test_in_flight_packet_lost_even_if_link_recovers_before_delivery(self):
        # Serialization 0.1 ms + latency 0.5 ms: delivery would be at 0.6 ms.
        sim, link, delivered = make_link(capacity=10.0, latency=0.5)
        link.enqueue(packet())
        # Fail at 0.2 (packet propagating), recover at 0.3 (< delivery time).
        sim.call_at(0.2, link.fail)
        sim.call_at(0.3, link.recover)
        sim.run()
        assert delivered == []

    def test_queued_packets_cleared_on_fail(self):
        sim, link, delivered = make_link(capacity=1.0, latency=0.0)
        for _ in range(5):
            link.enqueue(packet())
        sim.call_at(1.5, link.fail)   # one delivered (t=1.0), rest queued
        sim.run()
        assert len(delivered) == 1
        assert link.queue_length == 0

    def test_traffic_flows_after_recover(self):
        sim, link, delivered = make_link(capacity=10.0, latency=0.1)
        link.fail()
        assert link.enqueue(packet()) is False
        link.recover()
        assert link.enqueue(packet()) is True
        sim.run()
        assert len(delivered) == 1

    def test_second_epoch_independent_of_first(self):
        sim, link, delivered = make_link(capacity=10.0, latency=0.5)
        sim.call_at(0.0, link.enqueue, packet())   # in flight across fail #1
        sim.call_at(0.2, link.fail)
        sim.call_at(0.3, link.recover)
        sim.call_at(1.0, link.enqueue, packet())   # clean second epoch
        sim.run()
        assert len(delivered) == 1
        assert delivered[0][0] == pytest.approx(1.0 + 0.1 + 0.5)

    def test_enqueue_while_failed_counts_drop(self):
        sim, link, _ = make_link()
        link.fail()
        link.enqueue(packet())
        assert link.packets_dropped == 1


class TestNetworkRecoveryScheduling:
    def _network(self):
        from repro.simulator.network import Network, RoutingSystem
        from repro.simulator.switchnode import RoutingLogic
        from repro.topology.leafspine import leafspine

        events = []

        class _Logic(RoutingLogic):
            def on_data_packet(self, pkt, inport):
                neighbors = self.switch.switch_neighbors()
                return neighbors[0] if neighbors else None

            def on_link_change(self, neighbor, failed):
                events.append((self.switch.name, neighbor, failed))

        class _System(RoutingSystem):
            name = "static-test"

            def create_switch_logic(self, switch):
                return _Logic()

        return Network(leafspine(2, 2, hosts_per_leaf=1), _System()), events

    def test_recover_link_scheduling_honored(self):
        net, _ = self._network()
        net.fail_link("leaf0", "spine0", at_time=1.0)
        net.recover_link("leaf0", "spine0", at_time=2.0)
        net.run(1.5)
        assert net.link("leaf0", "spine0").failed
        assert net.link("spine0", "leaf0").failed
        net.sim.run(until=2.5)
        assert not net.link("leaf0", "spine0").failed
        assert not net.link("spine0", "leaf0").failed

    def test_routing_notified_on_both_transitions(self):
        net, events = self._network()
        net.fail_link("leaf0", "spine0", at_time=1.0)
        net.recover_link("leaf0", "spine0", at_time=2.0)
        net.run(3.0)
        assert ("leaf0", "spine0", True) in events
        assert ("spine0", "leaf0", True) in events
        assert ("leaf0", "spine0", False) in events
        assert ("spine0", "leaf0", False) in events
