"""Unit tests for the policy AST, the builder API and the textual parser."""

import math

import pytest

from repro.core import ast
from repro.core.builder import (
    add,
    and_,
    as_bool,
    as_expr,
    const,
    if_,
    inf,
    lt,
    matches,
    max_of,
    min_of,
    minimize,
    ne,
    not_,
    or_,
    path,
    rank_tuple,
    sub,
)
from repro.core.parser import parse_expression, parse_policy
from repro.core.rank import INFINITY, Rank
from repro.core.regex import parse_regex
from repro.exceptions import PolicyError, PolicyParseError


def ctx(path_nodes, **metrics):
    return ast.PathContext(path_nodes, metrics)


class TestEvaluation:
    def test_constant(self):
        assert const(5).evaluate(ctx(["A"])) == Rank(5)

    def test_infinity(self):
        assert inf.evaluate(ctx(["A"])) == INFINITY

    def test_attribute(self):
        assert path.util.evaluate(ctx(["A", "B"], util=0.3)) == Rank(0.3)

    def test_len_defaults_from_path(self):
        assert path.len.evaluate(ctx(["A", "B", "C"])) == Rank(2)

    def test_missing_metric_raises(self):
        with pytest.raises(PolicyError):
            path.lat.evaluate(ctx(["A", "B"]))

    def test_addition(self):
        expr = add(path.len, 10)
        assert expr.evaluate(ctx(["A", "B", "C"])) == Rank(12)

    def test_subtraction(self):
        assert sub(const(5), const(2)).evaluate(ctx(["A"])) == Rank(3)

    def test_min_max(self):
        assert min_of(3, 5).evaluate(ctx(["A"])) == Rank(3)
        assert max_of(3, 5).evaluate(ctx(["A"])) == Rank(5)

    def test_unknown_binop_rejected(self):
        with pytest.raises(PolicyError):
            ast.BinOp("*", const(1), const(2))

    def test_tuple_lexicographic(self):
        expr = rank_tuple(path.len, path.util)
        assert expr.evaluate(ctx(["A", "B"], util=0.5)) == Rank((1, 0.5))

    def test_tuple_needs_two_components(self):
        with pytest.raises(PolicyError):
            ast.TupleExpr((const(1),))

    def test_conditional_regex_then_branch(self):
        expr = if_(matches("A .*"), path.util, path.lat)
        assert expr.evaluate(ctx(["A", "B"], util=0.3, lat=9)) == Rank(0.3)

    def test_conditional_regex_else_branch(self):
        expr = if_(matches("A .*"), path.util, path.lat)
        assert expr.evaluate(ctx(["B", "C"], util=0.3, lat=9)) == Rank(9)

    def test_conditional_metric_guard(self):
        expr = if_(lt(path.util, 0.8), rank_tuple(1, 0, path.util),
                   rank_tuple(2, path.len, path.util))
        assert expr.evaluate(ctx(["A", "B"], util=0.5)) == Rank((1, 0, 0.5))
        assert expr.evaluate(ctx(["A", "B"], util=0.9)) == Rank((2, 1, 0.9))

    def test_regex_results_override_matching(self):
        pattern = parse_regex("A .*")
        expr = if_(ast.RegexTest(pattern), 0, 1)
        context = ast.PathContext(["B"], {}, {pattern: True})
        assert expr.evaluate(context) == Rank(0)

    def test_boolean_connectives(self):
        expr = if_(and_(matches(".* W .*"), not_(matches(".* X .*"))), 0, 1)
        assert expr.evaluate(ctx(["A", "W", "B"])) == Rank(0)
        assert expr.evaluate(ctx(["A", "W", "X"])) == Rank(1)
        expr_or = if_(or_(matches("A .*"), matches("B .*")), 0, 1)
        assert expr_or.evaluate(ctx(["B", "C"])) == Rank(0)

    def test_comparison_operators(self):
        assert ast.Compare("<=", path.util, const(0.5)).evaluate(ctx(["A", "B"], util=0.5))
        assert ne(path.len, 3).evaluate(ctx(["A", "B"]))
        with pytest.raises(PolicyError):
            ast.Compare("~", const(1), const(2))

    def test_policy_rank_path(self):
        policy = minimize(if_(matches(".* W .*"), 0, inf))
        assert policy.rank_path(["A", "W", "B"]) == Rank(0)
        assert policy.rank_path(["A", "B"]) == INFINITY


class TestIntrospection:
    def test_attributes_collected_from_branches_and_guards(self):
        policy = minimize(if_(lt(path.util, 0.8), path.lat, path.len))
        assert policy.attributes() == {"util", "lat", "len"}

    def test_regexes_collected_in_order(self):
        policy = minimize(if_(matches("A .*"), 0, if_(matches(".* B .*"), 1, inf)))
        patterns = policy.regexes()
        assert len(patterns) == 2
        assert patterns[0] == parse_regex("A .*")

    def test_duplicate_regexes_deduplicated(self):
        policy = minimize(add(if_(matches(".* W .*"), 1, 0), if_(matches(".* W .*"), 2, 0)))
        assert len(policy.regexes()) == 1

    def test_policy_str(self):
        policy = minimize(path.util)
        assert str(policy) == "minimize(path.util)"


class TestBuilder:
    def test_as_expr_coercions(self):
        assert isinstance(as_expr(3), ast.Const)
        assert isinstance(as_expr((1, path.util)), ast.TupleExpr)
        assert as_expr(path.util) is not None
        with pytest.raises(PolicyError):
            as_expr(True)
        with pytest.raises(PolicyError):
            as_expr("not an expression")

    def test_as_bool_coercions(self):
        assert isinstance(as_bool("A .*"), ast.RegexTest)
        assert isinstance(as_bool(parse_regex("A")), ast.RegexTest)
        assert isinstance(as_bool(True), ast.BoolConst)
        with pytest.raises(PolicyError):
            as_bool(123)

    def test_unknown_attribute_rejected(self):
        with pytest.raises(PolicyError):
            path.bandwidth  # noqa: B018 - attribute access is the test

    def test_rank_tuple_single_collapses(self):
        assert isinstance(rank_tuple(path.util), ast.Attr)

    def test_rank_tuple_empty_raises(self):
        with pytest.raises(PolicyError):
            rank_tuple()

    def test_minimize_rejects_booleans(self):
        with pytest.raises(PolicyError):
            minimize(True)


class TestParser:
    @pytest.mark.parametrize("text", [
        "minimize( if A .* then path.util else path.lat )",
        "minimize( if .* W .* then 0 else inf )",
        "minimize( if A B D then 0 else if A C D then 1 else inf )",
        "minimize( if A .* B .* D then (0, path.len, path.util) "
        "else if A .* C .* D then (1, path.len, path.util) else inf )",
        "minimize( if path.util < .8 then (1, 0, path.util) else (2, path.len, path.util) )",
        "minimize( (if .* A B .* then 10 else 0) + (if .* C D .* then 20 else 0) + path.len )",
        "minimize( path.len )",
        "minimize( (path.util, path.len) )",
        "minimize( if .* (F1 + F2) .* then path.util else inf )",
        "minimize( if .* X Y .* then path.util else inf )",
        "minimize( if S C E F D + S A E B D then path.util else inf )",
        "minimize( if .* B A .* then inf else path.util )",
    ])
    def test_paper_policies_parse(self, text):
        policy = parse_policy(text)
        assert isinstance(policy, ast.Policy)

    def test_parsed_policy_evaluates(self):
        policy = parse_policy("minimize( if A .* then path.util else path.lat )")
        assert policy.rank_path(["A", "B"], {"util": 0.3, "lat": 2}) == Rank(0.3)
        assert policy.rank_path(["B", "A"], {"util": 0.3, "lat": 2}) == Rank(2)

    def test_parsed_guard_policy_evaluates(self):
        policy = parse_policy(
            "minimize( if path.util < .8 then (1, 0, path.util) else (2, path.len, path.util) )")
        assert policy.rank_path(["A", "B"], {"util": 0.2}) == Rank((1, 0, 0.2))
        assert policy.rank_path(["A", "B", "C"], {"util": 0.9}) == Rank((2, 2, 0.9))

    def test_weighted_link_policy_evaluates(self):
        policy = parse_policy("minimize( (if .* A B .* then 10 else 0) + path.len )")
        assert policy.rank_path(["A", "B", "C"]) == Rank(12)
        assert policy.rank_path(["A", "C"]) == Rank(1)

    def test_unicode_infinity_accepted(self):
        policy = parse_policy("minimize( if .* W .* then 0 else ∞ )")
        assert policy.rank_path(["A", "B"]) == INFINITY

    def test_parse_expression_standalone(self):
        expr = parse_expression("(path.util, path.len)")
        assert isinstance(expr, ast.TupleExpr)

    def test_missing_minimize_rejected(self):
        with pytest.raises(PolicyParseError):
            parse_policy("path.util")

    def test_trailing_garbage_rejected(self):
        with pytest.raises(PolicyParseError):
            parse_policy("minimize( path.util ) extra")

    def test_missing_else_rejected(self):
        with pytest.raises(PolicyParseError):
            parse_policy("minimize( if A .* then path.util )")

    def test_empty_string_rejected(self):
        with pytest.raises(PolicyParseError):
            parse_policy("")
        with pytest.raises(PolicyParseError):
            parse_expression("")

    def test_comparison_with_parenthesised_left_side(self):
        policy = parse_policy("minimize( if (path.lat + 1) < 3 then 0 else 1 )")
        assert policy.rank_path(["A", "B"], {"lat": 1}) == Rank(0)
        assert policy.rank_path(["A", "B"], {"lat": 5}) == Rank(1)

    def test_boolean_and_or_in_condition(self):
        policy = parse_policy("minimize( if A .* and .* D then 0 else 1 )")
        assert policy.rank_path(["A", "C", "D"]) == Rank(0)
        assert policy.rank_path(["A", "C"]) == Rank(1)

    def test_not_in_condition(self):
        policy = parse_policy("minimize( if not .* W .* then 0 else 1 )")
        assert policy.rank_path(["A", "B"]) == Rank(0)
        assert policy.rank_path(["A", "W"]) == Rank(1)

    def test_min_max_functions(self):
        policy = parse_policy("minimize( min(path.lat, 5) + max(path.len, 1) )")
        assert policy.rank_path(["A", "B"], {"lat": 9, "len": 1}) == Rank(6)
