"""Array probe plane, table-level: vectorized judging == the scalar oracle.

The integration suite pins whole-grid summaries; this file pins the judge
itself.  A hypothesis property drives randomized probe waves — mixed
origins, duplicate keys, version ties, out-of-range tags, malformed interned
ids, believed-failed inports — through twin switches, one judging waves with
the array prefilter and one running the scalar loop, and asserts the *full*
protocol state (FwdT rows including ECMP alternates, BestT, liveness
bookkeeping) is identical after every wave.  Deterministic tests cover the
lowered-table helpers the judge is built from.
"""

import pytest

from hypothesis import given, settings, strategies as st

from repro.core.attributes import MetricVector
from repro.core.compiler import compile_policy
from repro.experiments.runner import datacenter_policy
from repro.nputil import np
from repro.protocol import ContraSystem
from repro.protocol import contra_switch as contra_switch_module
from repro.protocol.probe import ProbePayload, make_probe_packet
from repro.protocol.tables import (
    ForwardingShadow,
    lexicographic_gt,
    lexicographic_gt_eq,
)
from repro.simulator import Network, StatsCollector
from repro.simulator.probe_wave import ProbeWave
from repro.topology import fattree

pytestmark = pytest.mark.skipif(np is None,
                                reason="array probe plane requires numpy")

TOPOLOGY = fattree(4, capacity=100.0, oversubscription=4.0)
COMPILED = compile_policy(datacenter_policy(), TOPOLOGY)
SWITCH_NAMES = sorted(COMPILED.switch_ids())
CARRIED = tuple(COMPILED.carried_attrs)
MAX_TAG = max(COMPILED.device(SWITCH_NAMES[0]).tags, default=0)

#: Metric values drawn from a tiny set so exact propagation-key ties (the
#: add_alternate side-effect path) happen constantly, not once in a blue
#: moon of float draws.
METRIC_VALUES = (0.0, 0.25, 0.5, 1.0)


def _twin_fabrics():
    """Two identical fabrics: one judging waves, one pure scalar."""
    fabrics = []
    for vectorize in (True, False):
        system = ContraSystem(COMPILED, probe_period=0.256,
                              probe_vectorize=vectorize)
        network = Network(TOPOLOGY, system, stats=StatsCollector())
        fabrics.append((network, system))
    return fabrics


def _full_state(routing):
    fwdt = {key: (entry.next_hop, entry.next_tag, entry.version,
                  entry.metrics.values, entry.prop_key, entry.alternates)
            for key, entry in routing.fwdt.items()}
    return (fwdt, dict(routing.bestt._best),
            dict(routing._believed_failed), dict(routing._last_probe_from))


probe_spec = st.tuples(
    st.integers(0, len(SWITCH_NAMES) - 1),          # origin switch
    st.sampled_from(("ok", "none", "bogus")),       # interned-id health
    st.integers(1, 3),                              # version
    st.integers(0, MAX_TAG + 2),                    # tag (some invalid)
    st.tuples(*[st.sampled_from(METRIC_VALUES) for _ in CARRIED]),
)

wave_spec = st.tuples(
    st.integers(0, len(SWITCH_NAMES) - 1),          # receiving switch
    st.integers(0, 7),                              # inport selector
    st.booleans(),                                  # believed-failed inport
    st.lists(probe_spec, min_size=1, max_size=24),
)


def _payload(routing, spec):
    origin_index, id_health, version, tag, values = spec
    origin = SWITCH_NAMES[origin_index]
    if id_health == "ok":
        origin_id = routing._switch_ids.get(origin)
    elif id_health == "none":
        origin_id = None                 # uninterned: wave must go scalar
    else:
        origin_id = len(SWITCH_NAMES) + 1000   # out of range: bounds reject
    pids = sorted(sub.pid for sub in routing.subpolicies)
    pid = pids[version % len(pids)]
    metrics = MetricVector._make(CARRIED, values)
    return ProbePayload(origin=origin, pid=pid, version=version, tag=tag,
                        metrics=metrics, origin_id=origin_id)


@settings(max_examples=40, deadline=None)
@given(st.lists(wave_spec, min_size=1, max_size=3))
def test_judged_waves_leave_identical_state(waves):
    (vec_net, vec_sys), (sca_net, sca_sys) = _twin_fabrics()
    for receiver_index, inport_index, believed_failed, probes in waves:
        receiver = SWITCH_NAMES[receiver_index]
        vec_routing = vec_sys.logic(receiver)
        sca_routing = sca_sys.logic(receiver)
        assert vec_routing.wants_probe_waves is True
        neighbors = sorted(vec_net.switches[receiver].switch_neighbors())
        if not neighbors:
            continue
        inport = neighbors[inport_index % len(neighbors)]
        for routing in (vec_routing, sca_routing):
            routing._believed_failed[inport] = believed_failed
        packet_runs = []
        for routing in (vec_routing, sca_routing):
            packet_runs.append([
                make_probe_packet(_payload(routing, spec), inport, 64)
                for spec in probes])
        vec_packets, sca_packets = packet_runs
        # One member spanning the whole run: the judge sees the full wave
        # and the member consumer walks every verdict in FIFO order.
        wave = ProbeWave(list(vec_packets))
        wave.cursor = len(vec_packets)
        vec_routing.on_probe_wave(vec_packets, inport, wave)
        sca_routing.on_probe_batch(sca_packets, inport)
        assert _full_state(vec_routing) == _full_state(sca_routing), \
            f"state diverged after wave via {inport} -> {receiver}"


def test_lowered_transitions_match_dict_lookups():
    config = COMPILED.device(SWITCH_NAMES[0])
    rows = config.lowered_transitions()
    for (neighbor, neighbor_tag), local_tag in config.probe_transition.items():
        assert rows[neighbor][neighbor_tag] == local_tag
    for neighbor, row in rows.items():
        for tag in range(row.shape[0]):
            expected = config.probe_transition.get((neighbor, tag))
            assert row[tag] == (-1 if expected is None else expected)


class TestForwardingShadow:
    def _shadow(self):
        return ForwardingShadow(num_origins=4, num_tags=3, num_pids=2,
                                key_width=2)

    def test_record_and_reset_of_alternates(self):
        shadow = self._shadow()
        shadow.record(1, 2, 0, version=5, prop_key=(0.5, 1.0), nexthop_id=3)
        flat = shadow._flat(1, 2, 0)
        assert shadow.versions[flat] == 5
        assert shadow.nexthop_ids[flat] == 3
        shadow.record_alternate(1, 2, 0, version=5, hop_id=2, next_tag=1)
        assert shadow.alt_count[flat] == 1
        # Entry replacement resets the mirrored alternate group.
        shadow.record(1, 2, 0, version=6, prop_key=(0.25, 1.0), nexthop_id=2)
        assert shadow.alt_count[flat] == 0

    def test_alternate_mirror_matches_entry_semantics(self):
        shadow = self._shadow()
        shadow.record(0, 0, 0, version=1, prop_key=(0.0, 0.0), nexthop_id=1)
        flat = shadow._flat(0, 0, 0)
        # Own next hop and duplicates are refused, the group caps at 3.
        shadow.record_alternate(0, 0, 0, version=1, hop_id=1, next_tag=0)
        assert shadow.alt_count[flat] == 0
        shadow.record_alternate(0, 0, 0, version=1, hop_id=2, next_tag=0)
        shadow.record_alternate(0, 0, 0, version=1, hop_id=2, next_tag=0)
        assert shadow.alt_count[flat] == 1
        for hop in (5, 6, 7, 8):
            shadow.record_alternate(0, 0, 0, version=1, hop_id=hop, next_tag=0)
        assert shadow.alt_count[flat] == 3
        # A stale-version alternate never lands.
        shadow.record_alternate(0, 0, 0, version=0, hop_id=9, next_tag=0)
        assert shadow.alt_count[flat] == 3

    def test_out_of_range_records_are_ignored(self):
        shadow = self._shadow()
        shadow.record(99, 0, 0, version=1, prop_key=(0.0, 0.0), nexthop_id=1)
        shadow.record(0, 99, 0, version=1, prop_key=(0.0, 0.0), nexthop_id=1)
        shadow.record(0, 0, 0, version=1, prop_key=(0.0, 0.0, 0.0, 0.0),
                      nexthop_id=1)   # key wider than the lowered columns
        assert (shadow.versions >= 0).sum() == 0


def test_lexicographic_helpers_match_tuple_compare():
    lefts = [(0.0, 1.0), (1.0, 0.0), (1.0, 1.0), (0.5, 2.0)]
    rights = [(0.0, 1.0), (0.5, 9.0), (1.0, 0.5), (0.5, 2.0)]
    a = [np.array([l[i] for l in lefts]) for i in range(2)]
    b = [np.array([r[i] for r in rights]) for i in range(2)]
    gt = lexicographic_gt(a, b)
    gt2, eq = lexicographic_gt_eq(a, b)
    for row, (left, right) in enumerate(zip(lefts, rights)):
        assert bool(gt[row]) == (left > right)
        assert bool(gt2[row]) == (left > right)
        assert bool(eq[row]) == (left == right)


class TestProbeWaveEligibility:
    def _packets(self, count=3, origin_id=0):
        payloads = [ProbePayload("s0", 0, 1, 0,
                                 MetricVector._make(CARRIED,
                                                    (0.0,) * len(CARRIED)),
                                 origin_id=origin_id)
                    for _ in range(count)]
        return [make_probe_packet(p, "s1", 64) for p in payloads]

    def test_columns_built_once_and_cached(self):
        wave = ProbeWave(self._packets())
        first = wave.columns(CARRIED)
        assert first is not None
        ints, metrics = first
        assert ints.shape == (3, 4) and metrics.shape == (3, len(CARRIED))
        assert wave.columns(CARRIED) == first
        # The per-payload row bytes were cached for multicast reuse.
        assert all(packet.probe.row is not None for packet in wave.packets)

    def test_uninterned_origin_makes_wave_ineligible(self):
        wave = ProbeWave(self._packets(origin_id=None))
        assert wave.columns(CARRIED) is None
        assert wave.columns(CARRIED) is None    # the verdict is cached too

    def test_foreign_metric_layout_makes_wave_ineligible(self):
        wave = ProbeWave(self._packets())
        assert wave.columns(("definitely", "not", "carried")) is None

    def test_mixed_metric_layouts_make_wave_ineligible(self):
        packets = self._packets()
        packets[1].probe.metrics = MetricVector._make(
            ("util",), (0.0,)) if CARRIED != ("util",) else \
            MetricVector._make(("util", "lat"), (0.0, 0.0))
        wave = ProbeWave(packets)
        assert wave.columns(CARRIED) is None

    def test_non_numeric_payload_field_makes_wave_ineligible(self):
        packets = self._packets()
        packets[0].probe.tag = "not-a-tag"
        wave = ProbeWave(packets)
        assert wave.columns(CARRIED) is None
