"""Unit tests for the topology substrate."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.exceptions import TopologyError
from repro.topology import (
    ABILENE_NODES,
    FATTREE_SWITCH_COUNTS,
    Topology,
    abilene,
    builtin_topologies,
    builtin_topology,
    erdos_renyi,
    fattree,
    fattree_for_switch_count,
    from_adjacency,
    from_edge_list,
    from_edge_list_file,
    leafspine,
    random_regular,
    waxman,
)
from repro.topology.graph import Link, NodeKind


class TestLink:
    def test_self_loop_rejected(self):
        with pytest.raises(TopologyError):
            Link("A", "A")

    def test_nonpositive_capacity_rejected(self):
        with pytest.raises(TopologyError):
            Link("A", "B", capacity=0)

    def test_negative_latency_rejected(self):
        with pytest.raises(TopologyError):
            Link("A", "B", latency=-1)

    def test_reversed(self):
        link = Link("A", "B", capacity=5, latency=0.1)
        rev = link.reversed()
        assert rev.src == "B" and rev.dst == "A" and rev.capacity == 5


class TestTopologyBasics:
    def build(self):
        topo = Topology("t")
        topo.add_switch("A")
        topo.add_switch("B")
        topo.add_switch("C")
        topo.add_link("A", "B")
        topo.add_link("B", "C")
        topo.add_host("h1", "A")
        topo.add_link("h1", "A")
        return topo

    def test_switches_and_hosts(self):
        topo = self.build()
        assert topo.switches == ["A", "B", "C"]
        assert topo.hosts == ["h1"]
        assert topo.is_switch("A") and topo.is_host("h1")
        assert topo.attachment_switch("h1") == "A"
        assert topo.hosts_of_switch("A") == ["h1"]

    def test_duplicate_link_rejected(self):
        topo = self.build()
        with pytest.raises(TopologyError):
            topo.add_link("A", "B")

    def test_link_to_unknown_node_rejected(self):
        topo = self.build()
        with pytest.raises(TopologyError):
            topo.add_link("A", "Z")

    def test_host_attached_to_unknown_switch_rejected(self):
        topo = self.build()
        with pytest.raises(TopologyError):
            topo.add_host("h2", "Z")

    def test_host_and_switch_name_collision_rejected(self):
        topo = self.build()
        with pytest.raises(TopologyError):
            topo.add_host("A", "B")
        with pytest.raises(TopologyError):
            topo.add_switch("h1")

    def test_unknown_role_rejected(self):
        topo = Topology("t")
        with pytest.raises(TopologyError):
            topo.add_switch("X", role="router")

    def test_neighbors_and_degree(self):
        topo = self.build()
        assert topo.neighbors("A") == ["B", "h1"]
        assert topo.switch_neighbors("A") == ["B"]
        assert topo.degree("B") == 2

    def test_remove_link(self):
        topo = self.build()
        topo.remove_link("A", "B")
        assert not topo.has_link("A", "B")
        assert not topo.has_link("B", "A")
        with pytest.raises(TopologyError):
            topo.remove_link("A", "B")

    def test_with_failed_link_copies(self):
        topo = self.build()
        failed = topo.with_failed_link("A", "B")
        assert not failed.has_link("A", "B")
        assert topo.has_link("A", "B")

    def test_node_role_and_contains(self):
        topo = self.build()
        assert topo.node_role("A") == NodeKind.SWITCH
        assert "A" in topo and "Z" not in topo
        with pytest.raises(TopologyError):
            topo.node_role("Z")

    def test_link_lookup(self):
        topo = self.build()
        assert topo.link("A", "B").key == ("A", "B")
        with pytest.raises(TopologyError):
            topo.link("A", "C")

    def test_undirected_links_deduplicate(self):
        topo = self.build()
        undirected = {(l.src, l.dst) for l in topo.undirected_links}
        assert len(undirected) == len(topo.links) // 2

    def test_validate_detects_disconnection(self):
        topo = Topology("t")
        topo.add_switch("A")
        topo.add_switch("B")
        with pytest.raises(TopologyError):
            topo.validate()

    def test_repr_and_len(self):
        topo = self.build()
        assert "Topology" in repr(topo)
        assert len(topo) == 4


class TestTopologyAlgorithms:
    def build_square(self):
        topo = Topology("square")
        for s in "ABCD":
            topo.add_switch(s)
        for a, b in (("A", "B"), ("B", "C"), ("C", "D"), ("D", "A")):
            topo.add_link(a, b)
        return topo

    def test_shortest_path_lengths(self):
        topo = self.build_square()
        lengths = topo.shortest_path_lengths()
        assert lengths["A"]["C"] == 2
        assert lengths["A"]["B"] == 1

    def test_shortest_paths_enumerates_all(self):
        topo = self.build_square()
        paths = topo.shortest_paths("A", "C")
        assert sorted(paths) == [["A", "B", "C"], ["A", "D", "C"]]
        assert topo.shortest_paths("A", "A") == [["A"]]

    def test_all_simple_paths_with_cutoff(self):
        topo = self.build_square()
        assert len(topo.all_simple_paths("A", "C", cutoff=2)) == 2
        assert len(topo.all_simple_paths("A", "C")) == 2
        assert topo.all_simple_paths("A", "C", cutoff=1) == []

    def test_diameter_and_connectivity(self):
        topo = self.build_square()
        assert topo.is_connected()
        assert topo.diameter() == 2

    def test_max_rtt(self):
        topo = self.build_square()
        assert topo.max_rtt() == pytest.approx(2 * 2 * 0.05)

    def test_to_networkx(self):
        graph = self.build_square().to_networkx()
        assert graph.number_of_nodes() == 4
        assert graph.number_of_edges() == 8


class TestFattree:
    def test_k4_counts(self):
        topo = fattree(4)
        assert len(topo.switches) == 20
        assert len(topo.switches_with_role(NodeKind.CORE)) == 4
        assert len(topo.switches_with_role(NodeKind.AGGREGATION)) == 8
        assert len(topo.switches_with_role(NodeKind.EDGE)) == 8
        assert len(topo.hosts) == 16

    def test_odd_k_rejected(self):
        with pytest.raises(TopologyError):
            fattree(5)

    def test_oversubscription_reduces_fabric_capacity(self):
        topo = fattree(4, capacity=40.0, oversubscription=4.0)
        edge = topo.switches_with_role(NodeKind.EDGE)[0]
        agg = [n for n in topo.switch_neighbors(edge)][0]
        host = topo.hosts_of_switch(edge)[0]
        assert topo.link(edge, agg).capacity == pytest.approx(10.0)
        assert topo.link(host, edge).capacity == pytest.approx(40.0)

    def test_every_pair_of_edges_has_multiple_shortest_paths(self):
        topo = fattree(4)
        edges = topo.switches_with_role(NodeKind.EDGE)
        inter_pod = (edges[0], edges[-1])
        assert len(topo.shortest_paths(*inter_pod)) >= 2

    def test_fattree_for_switch_count(self):
        topo = fattree_for_switch_count(100)
        assert len(topo.switches) >= 100
        assert len(topo.hosts) == 0

    def test_switch_count_table_matches_formula(self):
        for k, count in FATTREE_SWITCH_COUNTS.items():
            assert count == 5 * (k // 2) ** 2

    def test_invalid_oversubscription_rejected(self):
        with pytest.raises(TopologyError):
            fattree(4, oversubscription=0)


class TestLeafSpine:
    def test_structure(self):
        topo = leafspine(3, 2, hosts_per_leaf=1)
        assert len(topo.switches_with_role(NodeKind.LEAF)) == 3
        assert len(topo.switches_with_role(NodeKind.SPINE)) == 2
        assert len(topo.hosts) == 3
        for leaf in topo.switches_with_role(NodeKind.LEAF):
            assert set(topo.switch_neighbors(leaf)) == {"spine0", "spine1"}

    def test_invalid_sizes_rejected(self):
        with pytest.raises(TopologyError):
            leafspine(0, 2)
        with pytest.raises(TopologyError):
            leafspine(2, 2, hosts_per_leaf=-1)


class TestAbilene:
    def test_node_set(self):
        topo = abilene()
        assert set(topo.switches) == set(ABILENE_NODES)
        assert len(topo.switches) == 11
        assert topo.is_connected()

    def test_hosts_per_switch(self):
        topo = abilene(hosts_per_switch=2)
        assert len(topo.hosts) == 22

    def test_multiple_paths_exist_coast_to_coast(self):
        topo = abilene(hosts_per_switch=0)
        assert len(topo.all_simple_paths("SEA", "NYC", cutoff=6)) >= 2


class TestRandomGraphs:
    @given(st.integers(min_value=5, max_value=40), st.integers(min_value=0, max_value=5))
    @settings(max_examples=20, deadline=None)
    def test_random_regular_is_connected(self, n, seed):
        topo = random_regular(n, degree=3, seed=seed)
        assert topo.is_connected()
        assert len(topo.switches) == n

    @given(st.integers(min_value=5, max_value=30), st.integers(min_value=0, max_value=5))
    @settings(max_examples=15, deadline=None)
    def test_erdos_renyi_is_connected(self, n, seed):
        assert erdos_renyi(n, seed=seed).is_connected()

    def test_waxman_is_connected_and_has_varied_latency(self):
        topo = waxman(30, seed=1)
        assert topo.is_connected()
        latencies = {l.latency for l in topo.links}
        assert len(latencies) > 1

    def test_determinism(self):
        a = random_regular(20, seed=7)
        b = random_regular(20, seed=7)
        assert [(l.src, l.dst) for l in a.links] == [(l.src, l.dst) for l in b.links]

    def test_invalid_parameters_rejected(self):
        with pytest.raises(TopologyError):
            random_regular(1)
        with pytest.raises(TopologyError):
            random_regular(10, degree=10)
        with pytest.raises(TopologyError):
            erdos_renyi(10, p=2.0)


class TestZoo:
    def test_builtin_list(self):
        names = builtin_topologies()
        assert "abilene" in names and "nsfnet" in names

    def test_builtin_topologies_are_connected(self):
        for name in builtin_topologies():
            assert builtin_topology(name).is_connected()

    def test_unknown_builtin_rejected(self):
        with pytest.raises(TopologyError):
            builtin_topology("arpanet-1969")

    def test_from_edge_list_with_attributes(self):
        topo = from_edge_list([("A", "B", 5.0), ("B", "C", 5.0, 0.2)], hosts_per_switch=1)
        assert topo.link("B", "C").latency == pytest.approx(0.2)
        assert topo.link("A", "B").capacity == pytest.approx(5.0)
        assert len(topo.hosts) == 3

    def test_from_edge_list_bad_tuple_rejected(self):
        with pytest.raises(TopologyError):
            from_edge_list([("A",)])

    def test_from_adjacency(self):
        topo = from_adjacency({"A": ["B", "C"], "B": ["C"], "C": []})
        assert topo.has_link("A", "B") and topo.has_link("C", "B")

    def test_from_edge_list_file(self, tmp_path):
        path = tmp_path / "net.edges"
        path.write_text("# comment\nA B 10 0.1\nB C\n")
        topo = from_edge_list_file(path)
        assert topo.name == "net"
        assert topo.link("A", "B").capacity == pytest.approx(10.0)

    def test_from_edge_list_file_bad_line(self, tmp_path):
        path = tmp_path / "bad.edges"
        path.write_text("A B ten\n")
        with pytest.raises(TopologyError):
            from_edge_list_file(path)
