"""Unit tests for path attributes and metric vectors."""

import pytest
from hypothesis import given, strategies as st

from repro.core.attributes import ATTRIBUTES, MetricVector, attribute, metric_names
from repro.exceptions import PolicyError


class TestAttributeRegistry:
    def test_builtin_attributes_exist(self):
        assert set(metric_names()) == {"util", "lat", "len"}

    def test_lookup_unknown_raises(self):
        with pytest.raises(PolicyError):
            attribute("bandwidth")

    def test_util_is_max_composed(self):
        util = attribute("util")
        assert util.composition == "max"
        assert util.extend(0.3, 0.7) == 0.7
        assert util.extend(0.7, 0.3) == 0.7

    def test_lat_is_sum_composed(self):
        lat = attribute("lat")
        assert lat.extend(1.0, 0.5) == 1.5

    def test_len_counts_hops(self):
        length = attribute("len")
        assert length.extend(2.0, 123.0) == 3.0

    def test_all_builtins_are_monotone(self):
        for attr in ATTRIBUTES.values():
            assert attr.is_monotone

    def test_only_util_is_max_like(self):
        assert attribute("util").is_max_like
        assert not attribute("lat").is_max_like
        assert not attribute("len").is_max_like


class TestMetricVector:
    def test_initial_values(self):
        mv = MetricVector(("util", "len"))
        assert mv.get("util") == 0.0
        assert mv.get("len") == 0.0

    def test_explicit_values(self):
        mv = MetricVector(("util", "lat"), (0.5, 1.0))
        assert mv.as_dict() == {"util": 0.5, "lat": 1.0}

    def test_length_mismatch_raises(self):
        with pytest.raises(PolicyError):
            MetricVector(("util",), (1.0, 2.0))

    def test_unknown_attribute_raises(self):
        with pytest.raises(PolicyError):
            MetricVector(("bogus",))

    def test_get_missing_raises(self):
        mv = MetricVector(("util",))
        with pytest.raises(PolicyError):
            mv.get("lat")

    def test_extend_applies_compositions(self):
        mv = MetricVector(("util", "lat", "len"), (0.4, 1.0, 2.0))
        extended = mv.extend({"util": 0.6, "lat": 0.25})
        assert extended.get("util") == 0.6
        assert extended.get("lat") == 1.25
        assert extended.get("len") == 3.0

    def test_extend_missing_link_values_default_to_zero(self):
        mv = MetricVector(("util", "lat"), (0.4, 1.0))
        extended = mv.extend({})
        assert extended.get("util") == 0.4
        assert extended.get("lat") == 1.0

    def test_extend_returns_new_vector(self):
        mv = MetricVector(("util",), (0.2,))
        extended = mv.extend({"util": 0.9})
        assert mv.get("util") == 0.2
        assert extended.get("util") == 0.9

    def test_replace(self):
        mv = MetricVector(("util", "len"), (0.2, 3.0))
        replaced = mv.replace("util", 0.8)
        assert replaced.get("util") == 0.8
        assert replaced.get("len") == 3.0

    def test_replace_unknown_raises(self):
        with pytest.raises(PolicyError):
            MetricVector(("util",)).replace("lat", 1.0)

    def test_equality_and_hash(self):
        a = MetricVector(("util",), (0.5,))
        b = MetricVector(("util",), (0.5,))
        assert a == b
        assert hash(a) == hash(b)
        assert a != MetricVector(("util",), (0.6,))

    def test_bits_accounting(self):
        assert MetricVector(("util", "len")).bits() == ATTRIBUTES["util"].bits + ATTRIBUTES["len"].bits

    @given(st.lists(st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
                    min_size=1, max_size=8))
    def test_util_extension_is_monotone_nondecreasing(self, link_utils):
        """Extending a path never decreases the bottleneck utilization."""
        mv = MetricVector(("util",))
        previous = 0.0
        for value in link_utils:
            mv = mv.extend({"util": value})
            assert mv.get("util") >= previous
            previous = mv.get("util")
        assert mv.get("util") == pytest.approx(max(link_utils))

    @given(st.lists(st.floats(min_value=0.0, max_value=10.0, allow_nan=False),
                    min_size=1, max_size=8))
    def test_lat_extension_accumulates_sum(self, latencies):
        mv = MetricVector(("lat", "len"))
        for value in latencies:
            mv = mv.extend({"lat": value})
        assert mv.get("lat") == pytest.approx(sum(latencies))
        assert mv.get("len") == len(latencies)
