"""Unit tests for the Figure 3 policy library and the command-line interface."""

import pytest

from repro.cli import build_parser, main
from repro.core import policies
from repro.core.rank import INFINITY, Rank


class TestPolicyLibrary:
    def test_all_policies_registry(self):
        assert set(policies.ALL_POLICIES) == {f"P{i}" for i in range(1, 10)}

    def test_p1_shortest_path(self):
        assert policies.shortest_path().rank_path(["A", "B", "C"]) == Rank(2)

    def test_p2_minimum_utilization(self):
        assert policies.minimum_utilization().rank_path(["A", "B"], {"util": 0.4}) == Rank(0.4)

    def test_p3_p4_tuple_order(self):
        metrics = {"util": 0.4, "len": 3}
        assert policies.widest_shortest_paths().rank_path(["A", "B", "C", "D"], metrics) == \
            Rank((0.4, 3))
        assert policies.shortest_widest_paths().rank_path(["A", "B", "C", "D"], metrics) == \
            Rank((3, 0.4))

    def test_p5_waypointing(self):
        policy = policies.waypointing(("F1", "F2"))
        assert policy.rank_path(["A", "F1", "B"], {"util": 0.2}) == Rank(0.2)
        assert policy.rank_path(["A", "F2", "B"], {"util": 0.2}) == Rank(0.2)
        assert policy.rank_path(["A", "B"], {"util": 0.2}) == INFINITY

    def test_p5_requires_waypoints(self):
        with pytest.raises(ValueError):
            policies.waypointing(())

    def test_p6_link_preference(self):
        policy = policies.link_preference("X", "Y")
        assert policy.rank_path(["A", "X", "Y", "B"], {"util": 0.1}) == Rank(0.1)
        assert policy.rank_path(["A", "Y", "X", "B"], {"util": 0.1}) == INFINITY

    def test_p7_weighted_link(self):
        policy = policies.weighted_link("X", "Y", weight=10)
        assert policy.rank_path(["A", "X", "Y", "B"]) == Rank(13)
        assert policy.rank_path(["A", "B"]) == Rank(1)

    def test_p8_source_local_preference(self):
        policy = policies.source_local_preference("X")
        metrics = {"util": 0.3, "lat": 7.0}
        assert policy.rank_path(["X", "B"], metrics) == Rank(0.3)
        assert policy.rank_path(["A", "B"], metrics) == Rank(7.0)

    def test_p9_congestion_aware(self):
        policy = policies.congestion_aware(0.8)
        assert policy.rank_path(["A", "B"], {"util": 0.5}) == Rank((1, 0, 0.5))
        assert policy.rank_path(["A", "B", "C"], {"util": 0.9}) == Rank((2, 2, 0.9))

    def test_failover_preference(self):
        policy = policies.failover_preference(("A", "B", "D"), ("A", "C", "D"))
        assert policy.rank_path(["A", "B", "D"]) == Rank(0)
        assert policy.rank_path(["A", "C", "D"]) == Rank(1)
        assert policy.rank_path(["A", "D"]) == INFINITY

    def test_minimize_latency(self):
        assert policies.minimize_latency().rank_path(["A", "B"], {"lat": 3.5}) == Rank(3.5)

    def test_evaluation_aliases(self):
        assert policies.MU().name == "MU"
        assert policies.CA().name == "CA"
        assert policies.WP(("W1",)).name == "WP"
        assert len(policies.WP(("W1", "W2")).regexes()) == 3


class TestCli:
    def test_parser_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_policies_command(self, capsys):
        assert main(["policies"]) == 0
        output = capsys.readouterr().out
        assert "P1" in output and "P9" in output

    def test_compile_builtin_policy_on_leafspine(self, capsys):
        assert main(["compile", "P2", "--topology", "leafspine", "--k", "2"]) == 0
        output = capsys.readouterr().out
        assert "probe ids" in output
        assert "switch state" in output

    def test_compile_inline_policy_on_abilene(self, capsys):
        assert main(["compile", "minimize( path.lat )", "--topology", "abilene"]) == 0
        assert "product graph" in capsys.readouterr().out

    def test_compile_emits_p4(self, tmp_path, capsys):
        out_dir = tmp_path / "p4"
        assert main(["compile", "P2", "--topology", "leafspine", "--k", "2",
                     "--emit-p4", str(out_dir)]) == 0
        programs = list(out_dir.glob("*.p4"))
        assert len(programs) == 4
        assert "contra_probe_t" in programs[0].read_text()

    def test_compile_unknown_topology_fails(self):
        with pytest.raises(SystemExit):
            main(["compile", "P2", "--topology", "does-not-exist"])

    def test_experiment_unknown_name_rejected_by_parser(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["experiment", "fig99"])

    def test_leafspine_shape_flags_reach_the_generator(self):
        # Regression: the CLI used to hardcode hosts_per_leaf=2 and force a
        # square leaves == spines == k fabric.
        from repro.cli import _build_topology
        args = build_parser().parse_args(
            ["compile", "P2", "--topology", "leafspine",
             "--leaves", "3", "--spines", "2", "--hosts-per-leaf", "1"])
        topo = _build_topology(args)
        assert len(topo.switches_with_role("leaf")) == 3
        assert len(topo.switches_with_role("spine")) == 2
        assert len(topo.hosts) == 3

    def test_leafspine_defaults_remain_square_k(self):
        from repro.cli import _build_topology
        args = build_parser().parse_args(
            ["compile", "P2", "--topology", "leafspine", "--k", "2"])
        topo = _build_topology(args)
        assert len(topo.switches_with_role("leaf")) == 2
        assert len(topo.switches_with_role("spine")) == 2
        assert len(topo.hosts) == 4

    def test_new_scenarios_accepted_by_run_grid_parser(self):
        for scenario in ("incast", "multi-failure", "recovery-sweep"):
            args = build_parser().parse_args(["run-grid", scenario])
            assert args.name == scenario


class TestCheckPolicyCli:
    def test_isotonic_policy_certified(self, capsys):
        assert main(["check-policy", "P2"]) == 0
        out = capsys.readouterr().out
        assert "semantic=certified" in out
        assert "verdict: OK" in out

    def test_p9_reports_concrete_counterexample(self, capsys):
        assert main(["check-policy", "P9"]) == 0  # non-isotonic is not a failure
        out = capsys.readouterr().out
        assert "WITNESS FOUND" in out
        assert "isotonicity counterexample" in out
        assert "preference inverts" in out

    def test_alias_and_inline_policies_accepted(self, capsys):
        assert main(["check-policy", "MU"]) == 0
        assert main(["check-policy", "minimize( path.lat )"]) == 0

    def test_non_monotone_policy_fails(self, capsys):
        assert main(["check-policy", "minimize( 10 - path.len )"]) == 1
        out = capsys.readouterr().out
        assert "verdict: FAILED" in out
        assert "rank decreases" in out

    def test_json_report_single_policy(self, tmp_path, capsys):
        import json
        report_path = tmp_path / "p9.json"
        assert main(["check-policy", "P9", "--json", str(report_path)]) == 0
        data = json.loads(report_path.read_text())
        assert data["policy"] == "P9-congestion-aware"
        assert data["ok"] is True
        assert data["syntactic"]["needs_metric_decomposition"] is True
        witness = data["semantic"]["isotonicity_witness"]
        assert witness is not None and "description" in witness

    def test_json_report_all_policies(self, tmp_path, capsys):
        import json
        report_path = tmp_path / "all.json"
        assert main(["check-policy", "--all", "--json", str(report_path)]) == 0
        data = json.loads(report_path.read_text())
        assert len(data) == 9
        assert {entry["policy"][:2] for entry in data} == \
            {f"P{i}" for i in range(1, 10)}

    def test_topology_run_includes_reachability_and_crosscheck(self, capsys):
        assert main(["check-policy", "P2", "--topo", "abilene"]) == 0
        out = capsys.readouterr().out
        assert "topology abilene" in out
        assert "product graph" in out
        assert "cross-check" in out

    def test_missing_policy_argument_rejected(self):
        with pytest.raises(SystemExit):
            main(["check-policy"])
