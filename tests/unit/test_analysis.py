"""Unit tests for the policy analyses: monotonicity, isotonicity, decomposition."""

import pytest

from repro.core import ast, policies
from repro.core.analysis import (
    branch_is_isotonic,
    check_isotonicity,
    check_monotonicity,
    decompose,
    require_monotone,
)
from repro.core.attributes import MetricVector
from repro.core.builder import add, if_, inf, lt, matches, minimize, path, rank_tuple, sub
from repro.core.rank import Rank
from repro.exceptions import PolicyAnalysisError


class TestMonotonicity:
    @pytest.mark.parametrize("factory", [
        policies.shortest_path,
        policies.minimum_utilization,
        policies.widest_shortest_paths,
        policies.shortest_widest_paths,
        policies.waypointing,
        policies.link_preference,
        policies.weighted_link,
        policies.source_local_preference,
        policies.congestion_aware,
        policies.minimize_latency,
    ])
    def test_all_figure3_policies_are_monotone(self, factory):
        assert check_monotonicity(factory()).is_monotone

    def test_subtracting_a_metric_is_not_monotone(self):
        policy = minimize(sub(const_ten(), path.len))
        assert not check_monotonicity(policy).is_monotone

    def test_subtracting_a_constant_is_monotone(self):
        policy = minimize(sub(path.lat, 1))
        assert check_monotonicity(policy).is_monotone

    def test_require_monotone_raises_for_bad_policy(self):
        policy = minimize(sub(const_ten(), path.util))
        with pytest.raises(PolicyAnalysisError):
            require_monotone(policy)

    def test_regex_conditional_produces_warning_not_failure(self):
        result = check_monotonicity(policies.waypointing())
        assert result.is_monotone
        assert result.warnings

    def test_metric_guard_produces_warning(self):
        result = check_monotonicity(policies.congestion_aware())
        assert result.is_monotone
        assert any("decomposition" in w for w in result.warnings)

    def test_bare_expression_accepted(self):
        assert check_monotonicity(path.util).is_monotone


def const_ten():
    return ast.Const(10.0)


class TestIsotonicity:
    def test_single_metric_is_isotonic(self):
        assert check_isotonicity(policies.minimum_utilization()).is_isotonic
        assert check_isotonicity(policies.shortest_path()).is_isotonic

    def test_sum_first_tuple_is_isotonic(self):
        # (path.len, path.util): sum-like first, max-like last.
        assert check_isotonicity(policies.shortest_widest_paths()).is_isotonic

    def test_max_first_tuple_needs_decomposition(self):
        # (path.util, path.len): the bottleneck metric ordered before hop count.
        result = check_isotonicity(policies.widest_shortest_paths())
        assert not result.is_isotonic
        assert result.needs_metric_decomposition

    def test_regex_conditional_flagged_for_product_graph(self):
        result = check_isotonicity(policies.waypointing())
        assert result.needs_regex_decomposition
        assert not result.needs_metric_decomposition

    def test_metric_guard_flagged_for_decomposition(self):
        result = check_isotonicity(policies.congestion_aware())
        assert result.needs_metric_decomposition

    def test_min_operator_not_isotonic(self):
        policy = minimize(ast.BinOp("min", path.util, path.lat))
        assert check_isotonicity(policy).needs_metric_decomposition

    def test_adding_two_max_like_terms_not_isotonic(self):
        policy = minimize(add(path.util, path.util))
        assert check_isotonicity(policy).needs_metric_decomposition

    def test_weight_plus_len_is_isotonic(self):
        assert check_isotonicity(policies.weighted_link()).is_isotonic or \
            check_isotonicity(policies.weighted_link()).needs_regex_decomposition

    def test_branch_is_isotonic_resolves_regexes(self):
        branch = if_(matches(".* W .*"), path.util, inf)
        assert branch_is_isotonic(branch)

    def test_branch_with_metric_guard_not_isotonic(self):
        branch = if_(lt(path.util, 0.5), path.len, path.lat)
        assert not branch_is_isotonic(branch)


class TestDecomposition:
    def test_single_metric_policy_has_one_probe(self):
        decomposition = decompose(policies.minimum_utilization())
        assert decomposition.num_probes == 1
        assert decomposition.subpolicies[0].propagation_attrs == ("util",)
        assert decomposition.carried_attrs == ("util",)

    def test_waypointing_has_one_probe(self):
        decomposition = decompose(policies.waypointing())
        assert decomposition.num_probes == 1

    def test_congestion_aware_gets_one_probe_per_guard_branch(self):
        decomposition = decompose(policies.congestion_aware())
        assert decomposition.num_probes == 2
        guards = [sub.guards for sub in decomposition.subpolicies]
        assert all(len(g) == 1 for g in guards)
        truths = {g[0][1] for g in guards}
        assert truths == {True, False}

    def test_congestion_aware_carries_both_metrics(self):
        decomposition = decompose(policies.congestion_aware())
        assert set(decomposition.carried_attrs) == {"util", "len"}

    def test_non_isotonic_tuple_gets_extra_propagation_order(self):
        decomposition = decompose(policies.widest_shortest_paths())
        assert decomposition.num_probes == 2
        orders = {sub.propagation_attrs for sub in decomposition.subpolicies}
        assert ("util", "len") in orders
        assert ("len", "util") in orders

    def test_isotonic_tuple_keeps_single_probe(self):
        decomposition = decompose(policies.shortest_widest_paths())
        assert decomposition.num_probes == 1
        assert decomposition.subpolicies[0].propagation_attrs == ("len", "util")

    def test_source_local_preference_carries_both_metrics(self):
        decomposition = decompose(policies.source_local_preference())
        assert set(decomposition.carried_attrs) == {"util", "lat"}
        assert decomposition.num_probes == 1

    def test_propagation_rank_orders_metric_vectors(self):
        decomposition = decompose(policies.minimum_utilization())
        sub = decomposition.subpolicies[0]
        low = MetricVector(("util",), (0.1,))
        high = MetricVector(("util",), (0.9,))
        assert sub.propagation_rank(low) < sub.propagation_rank(high)

    def test_static_policy_propagation_rank_is_constant(self):
        policy = minimize(if_(matches("A B D"), 0, if_(matches("A C D"), 1, inf)))
        decomposition = decompose(policy)
        sub = decomposition.subpolicies[0]
        assert sub.propagation_rank(MetricVector(())) == Rank(0)

    def test_guards_satisfied(self):
        decomposition = decompose(policies.congestion_aware())
        below = MetricVector(("util", "len"), (0.3, 2.0))
        above = MetricVector(("util", "len"), (0.9, 2.0))
        for sub in decomposition.subpolicies:
            expected_truth = sub.guards[0][1]
            assert sub.guards_satisfied(below) == expected_truth
            assert sub.guards_satisfied(above) == (not expected_truth)

    def test_subpolicy_lookup_by_pid(self):
        decomposition = decompose(policies.congestion_aware())
        for sub in decomposition.subpolicies:
            assert decomposition.subpolicy(sub.pid) is sub
        with pytest.raises(PolicyAnalysisError):
            decomposition.subpolicy(99)

    def test_describe_is_informative(self):
        decomposition = decompose(policies.congestion_aware())
        text = decomposition.subpolicies[0].describe()
        assert "pid=0" in text

    def test_too_many_guards_rejected(self):
        expr = path.util
        for threshold in (0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7):
            expr = if_(lt(path.lat, threshold), expr, add(expr, 1))
        with pytest.raises(PolicyAnalysisError):
            decompose(minimize(expr))

    def test_initial_metrics_match_carried_attrs(self):
        decomposition = decompose(policies.congestion_aware())
        mv = decomposition.subpolicies[0].initial_metrics()
        assert set(mv.names) == set(decomposition.carried_attrs)
