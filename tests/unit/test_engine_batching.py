"""Engine batch lane: FIFO ordering, coalescing, sealing and accounting.

The batch lane's contract is that it is *invisible* except for heap traffic:
same-timestamp lane registrations run in exact FIFO order, interleavings
with non-lane events at the same timestamp are preserved (sealing), and the
event counters read identically with the lane on or off.
"""

import pytest

from repro.exceptions import SimulationError
from repro.simulator import SimLink, Simulator
from repro.simulator.packet import Packet, PacketKind


def probe(seq: int = 0) -> Packet:
    return Packet(kind=PacketKind.PROBE, src_host="s", dst_host="", seq=seq,
                  size_bytes=50)


class TestBatchLaneOrdering:
    def test_members_fire_in_registration_order(self):
        sim = Simulator(batching=True)
        trace = []

        def sink_a(key, args):
            trace.extend(("a", key, value) for value in args)

        def sink_b(key, args):
            trace.extend(("b", key, value) for value in args)

        sim.call_batched(1.0, sink_a, 0, "x")
        sim.call_batched(1.0, sink_b, 0, "y")
        sim.call_batched(1.0, sink_a, 0, "z")
        sim.run()
        assert trace == [("a", 0, "x"), ("b", 0, "y"), ("a", 0, "z")]

    def test_consecutive_same_callback_and_key_merge_into_one_call(self):
        sim = Simulator(batching=True)
        calls = []
        sim.call_batched(1.0, lambda key, args: calls.append((key, list(args))), 7, "x")
        # Same callback object is required for merging; rebind once.
        callback = sim._batch[0][0]
        sim.call_batched(1.0, callback, 7, "y")
        sim.call_batched(1.0, callback, 7, "z")
        sim.run()
        assert calls == [(7, ["x", "y", "z"])]

    def test_key_change_splits_the_run(self):
        sim = Simulator(batching=True)
        calls = []

        def sink(key, args):
            calls.append((key, list(args)))

        sim.call_batched(1.0, sink, 1, "x")
        sim.call_batched(1.0, sink, 1, "y")
        sim.call_batched(1.0, sink, 2, "z")
        sim.run()
        assert calls == [(1, ["x", "y"]), (2, ["z"])]

    def test_distinct_times_use_distinct_batches(self):
        sim = Simulator(batching=True)
        calls = []

        def sink(key, args):
            calls.append((sim.now, list(args)))

        sim.call_batched(1.0, sink, 0, "x")
        sim.call_batched(2.0, sink, 0, "y")
        sim.call_batched(1.0, sink, 0, "z")
        sim.run()
        # The time-2.0 registration sealed nothing at 1.0 (different tick),
        # but "z" arrived after the 1.0 batch was displaced, so it runs in a
        # second same-tick batch — still in FIFO order.
        assert calls == [(1.0, ["x"]), (1.0, ["z"]), (2.0, ["y"])]

    def test_non_lane_event_at_same_time_seals_the_batch(self):
        sim = Simulator(batching=True)
        trace = []

        def sink(key, args):
            trace.extend(args)

        sim.call_batched(1.0, sink, 0, "a")
        sim.call_at(1.0, trace.append, "plain")
        sim.call_batched(1.0, sink, 0, "b")
        sim.run()
        assert trace == ["a", "plain", "b"]

    def test_non_lane_event_at_other_time_does_not_seal(self):
        sim = Simulator(batching=True)
        trace = []

        def sink(key, args):
            trace.extend(args)

        sim.call_batched(1.0, sink, 0, "a")
        sim.call_at(0.5, trace.append, "early")
        sim.call_batched(1.0, sink, 0, "b")
        sim.run()
        # "b" coalesced into the open batch: one call with both args.
        assert trace == ["early", "a", "b"]
        assert sim.events_processed == 3

    def test_past_registration_raises(self):
        sim = Simulator(batching=True)
        sim.call_at(1.0, lambda: None)
        sim.run()
        with pytest.raises(SimulationError):
            sim.call_batched(0.5, lambda key, args: None, 0, "x")


class TestBatchLaneAccounting:
    @pytest.mark.parametrize("batching", [True, False])
    def test_counters_identical_with_lane_on_or_off(self, batching):
        sim = Simulator(batching=batching)
        fired = []

        def sink(key, args):
            fired.extend(args)

        for value in range(5):
            sim.call_batched(1.0, sink, 0, value)
        sim.call_batched(2.0, sink, 0, "late")
        assert sim.pending_events == 6
        sim.run()
        assert fired == [0, 1, 2, 3, 4, "late"]
        assert sim.pending_events == 0
        assert sim.events_processed == 6

    def test_disabled_lane_delivers_singleton_runs(self):
        sim = Simulator(batching=False)
        calls = []

        def sink(key, args):
            calls.append((key, list(args)))

        sim.call_batched(1.0, sink, 3, "x")
        sim.call_batched(1.0, sink, 3, "y")
        sim.run()
        assert calls == [(3, ["x"]), (3, ["y"])]

    def test_stop_mid_batch_requeues_the_tail(self):
        sim = Simulator(batching=True)
        fired = []

        def stopper(key, args):
            fired.extend(args)
            sim.stop()

        def sink(key, args):
            fired.extend(args)

        sim.call_batched(1.0, stopper, 0, "first")
        sim.call_batched(1.0, sink, 0, "second")
        sim.call_batched(1.0, sink, 0, "third")
        sim.run()
        assert fired == ["first"]
        assert sim.pending_events == 2
        sim.run()
        assert fired == ["first", "second", "third"]
        assert sim.pending_events == 0


class TestLinkProbeRunFifo:
    """FIFO order inside a coalesced (link, tick) probe batch."""

    def _link(self, sim, delivered):
        return SimLink(sim, "a", "b", capacity=100.0, latency=0.05,
                       deliver=lambda packet, inport: delivered.append(
                           ("single", packet.seq, inport)),
                       deliver_batch=lambda packets, inport: delivered.append(
                           ("batch", [p.seq for p in packets], inport)))

    def test_same_tick_probes_arrive_as_one_fifo_run(self):
        sim = Simulator(batching=True)
        delivered = []
        link = self._link(sim, delivered)
        for seq in range(4):
            link.enqueue(probe(seq))
        sim.run()
        assert delivered == [("batch", [0, 1, 2, 3], "a")]

    def test_run_order_preserved_across_interleaved_links(self):
        sim = Simulator(batching=True)
        delivered = []
        link_a = self._link(sim, delivered)
        link_b = self._link(sim, delivered)
        link_a.enqueue(probe(0))
        link_b.enqueue(probe(1))
        link_a.enqueue(probe(2))
        sim.run()
        # Interleaving across links is exactly the enqueue order: the second
        # link_a probe must NOT be pulled forward into link_a's first run.
        assert delivered == [("batch", [0], "a"), ("batch", [1], "a"),
                             ("batch", [2], "a")]

    def test_fail_between_registrations_splits_and_drops_the_epoch(self):
        sim = Simulator(batching=True)
        delivered = []
        link = self._link(sim, delivered)
        link.enqueue(probe(0))
        link.fail()
        link.recover()
        link.enqueue(probe(1))
        sim.run()
        # Probe 0 was in flight across the failure epoch: lost.  Probe 1 was
        # registered under the new epoch and delivers alone.
        assert delivered == [("batch", [1], "a")]

    def test_without_batch_sink_probes_fall_back_to_per_packet_delivery(self):
        sim = Simulator(batching=True)
        delivered = []
        link = SimLink(sim, "a", "b", capacity=100.0, latency=0.05,
                       deliver=lambda packet, inport: delivered.append(
                           (packet.seq, inport)))
        link.enqueue(probe(0))
        link.enqueue(probe(1))
        sim.run()
        assert delivered == [(0, "a"), (1, "a")]
