"""Unit tests for the same-tick race detector's diffing and installation.

The end-to-end sweep (``contra race-check``) runs in CI over the fast
registry scenarios; these tests pin the pieces with sharp edges — the
NaN-safe summary diff and the permutation-hook installation contract.
"""

import random

import pytest

from repro.baselines import ShortestPathSystem
from repro.core.compiler import compile_policy
from repro.core.policies import MU
from repro.exceptions import ExperimentError
from repro.experiments.race import _canon, _diff_result, install_race
from repro.experiments.runner import RunResult
from repro.protocol import ContraSystem
from repro.simulator import Network
from repro.topology import leafspine


def _result(**summary):
    return RunResult(name="pt", system="contra", workload="web_search",
                     load=0.5, seed=1, summary=summary)


class TestSummaryDiff:
    def test_nan_valued_keys_do_not_diverge(self):
        """Regression: ``nan != nan`` is always true, so a plain comparison
        flagged every stream-only point (FCT keys are NaN) as a race.  The
        diff must compare the *serialized* summary — the byte-identity the
        determinism contract is actually about."""
        base = _result(avg_fct_ms=float("nan"), p99_fct_ms=float("nan"),
                       delivered_bytes=1000)
        permuted = _result(avg_fct_ms=float("nan"), p99_fct_ms=float("nan"),
                           delivered_bytes=1000)
        assert _diff_result(base, permuted) == []
        assert _canon(float("nan")) == _canon(float("nan"))

    def test_real_differences_still_diverge(self):
        base = _result(delivered_bytes=1000, completion=1.0)
        permuted = _result(delivered_bytes=1024, completion=1.0)
        assert _diff_result(base, permuted) == ["delivered_bytes"]

    def test_queue_cdf_and_throughput_are_diffed_too(self):
        base = _result(x=1)
        permuted = _result(x=1)
        base.queue_cdf = {0.5: 1.0}
        permuted.queue_cdf = {0.5: 2.0}
        assert _diff_result(base, permuted) == ["queue_cdf"]


class TestInstallRace:
    @pytest.mark.no_sanitize
    def test_unsanitized_network_is_rejected(self):
        network = Network(leafspine(2, 2, hosts_per_leaf=1),
                          ShortestPathSystem())
        with pytest.raises(ExperimentError):
            install_race(network, 0)

    def test_hooks_armed_and_permuted_run_stays_clean(self):
        topo = leafspine(2, 2, hosts_per_leaf=1, capacity=50.0)
        system = ContraSystem(compile_policy(MU(), topo), probe_period=0.25)
        network = Network(topo, system, sanitize=True)
        install_race(network, permute_seed=0)
        sanitizer = network.sanitizer
        # One RNG drives both axes; the commutable set resolved to the
        # system's declared rounds (underlying functions, not bound methods).
        assert system.race_rng is sanitizer.race_rng
        assert isinstance(sanitizer.race_rng, random.Random)
        assert len(sanitizer.race_commutable) == len(system.commutable_rounds)
        network.run(1.0)
        assert sanitizer.ok
