"""Unit tests for product graph construction (§4.1, Figure 6)."""

import pytest

from repro.core.builder import if_, inf, matches, minimize, path
from repro.core.product_graph import PGNode, build_product_graph
from repro.core.regex import parse_regex
from repro.exceptions import CompilationError
from repro.topology.graph import Topology


@pytest.fixture
def diamond():
    """The Figure 6(a) topology: A-B, A-C, B-C, B-D, C-D."""
    topo = Topology("figure6")
    for switch in ("A", "B", "C", "D"):
        topo.add_switch(switch)
    for a, b in (("A", "B"), ("A", "C"), ("B", "C"), ("B", "D"), ("C", "D")):
        topo.add_link(a, b)
    return topo


class TestTopologyOnlyGraph:
    def test_no_regexes_gives_one_virtual_node_per_switch(self, diamond):
        pg = build_product_graph(diamond, [])
        assert pg.num_nodes == 4
        assert pg.max_tags_per_switch() == 1
        for switch in diamond.switches:
            assert pg.probe_sending_nodes[switch].switch == switch

    def test_edges_follow_topology_links(self, diamond):
        pg = build_product_graph(diamond, [])
        node_a = pg.probe_sending_nodes["A"]
        successors = {n.switch for n in pg.successors(node_a)}
        assert successors == {"B", "C"}

    def test_acceptance_is_empty_without_regexes(self, diamond):
        pg = build_product_graph(diamond, [])
        assert pg.acceptance(pg.probe_sending_nodes["A"]) == ()

    def test_empty_topology_rejected(self):
        with pytest.raises(CompilationError):
            build_product_graph(Topology("empty"), [])


class TestFigure6Example:
    """The running example: allow A-B-D, allow B .* D by least utilization."""

    @pytest.fixture
    def pg(self, diamond):
        regexes = [parse_regex("A B D"), parse_regex("B .* D")]
        return build_product_graph(diamond, regexes, minimize_tags=False)

    def test_physical_node_b_has_multiple_virtual_nodes(self, pg):
        assert len(pg.nodes_of_switch("B")) >= 2

    def test_abd_path_is_accepted_for_first_regex(self, pg):
        acceptance = pg.traffic_path_acceptance(["A", "B", "D"])
        assert acceptance[parse_regex("A B D")] is True
        assert acceptance[parse_regex("B .* D")] is False

    def test_bcd_path_is_accepted_for_second_regex(self, pg):
        acceptance = pg.traffic_path_acceptance(["B", "C", "D"])
        assert acceptance[parse_regex("A B D")] is False
        assert acceptance[parse_regex("B .* D")] is True

    def test_acd_path_matches_neither(self, pg):
        acceptance = pg.traffic_path_acceptance(["A", "C", "D"])
        assert acceptance[parse_regex("A B D")] is False
        assert acceptance[parse_regex("B .* D")] is False

    def test_probe_sending_state_of_d_consumed_d(self, pg):
        node = pg.probe_sending_nodes["D"]
        assert node.switch == "D"
        # Probes start having consumed the destination symbol; neither regex
        # accepts the single-node path "D".
        assert pg.acceptance(node) == (False, False)

    def test_invalid_traffic_path_returns_none(self, pg):
        assert pg.trace_traffic_path(["A", "D"]) is None  # no A-D link
        assert pg.traffic_path_acceptance(["Z", "D"]) is None

    def test_tags_are_unique_per_switch(self, pg):
        for switch in ("A", "B", "C", "D"):
            tags = [pg.tag_of(node) for node in pg.nodes_of_switch(switch)]
            assert len(tags) == len(set(tags))

    def test_node_by_tag_roundtrip(self, pg):
        for node in pg.nodes:
            assert pg.node_by_tag(node.switch, pg.tag_of(node)) == node

    def test_node_by_tag_unknown_raises(self, pg):
        with pytest.raises(CompilationError):
            pg.node_by_tag("A", 999)

    def test_successor_at_returns_matching_neighbor(self, pg):
        node_d = pg.probe_sending_nodes["D"]
        successor = pg.successor_at(node_d, "B")
        assert successor is not None and successor.switch == "B"
        assert pg.successor_at(node_d, "A") is None  # D has no link to A

    def test_every_edge_respects_topology(self, pg, diamond):
        for node, successors in pg.out_edges.items():
            for successor in successors:
                assert diamond.has_link(node.switch, successor.switch)


class TestWaypointGraph:
    def test_waypoint_acceptance(self, diamond):
        pg = build_product_graph(diamond, [parse_regex(".* C .*")])
        assert pg.traffic_path_acceptance(["A", "C", "D"])[parse_regex(".* C .*")] is True
        assert pg.traffic_path_acceptance(["A", "B", "D"])[parse_regex(".* C .*")] is False

    def test_acceptance_by_regex_keys_are_original_direction(self, diamond):
        pattern = parse_regex(".* C .*")
        pg = build_product_graph(diamond, [pattern])
        node = pg.probe_sending_nodes["C"]
        assert pattern in pg.acceptance_by_regex(node)


class TestTagMinimization:
    def test_minimization_never_increases_nodes(self, diamond):
        regexes = [parse_regex("A B D"), parse_regex("B .* D")]
        raw = build_product_graph(diamond, regexes, minimize_tags=False)
        minimized = build_product_graph(diamond, regexes, minimize_tags=True)
        assert minimized.num_nodes <= raw.num_nodes

    def test_minimization_preserves_acceptance_of_paths(self, diamond):
        regexes = [parse_regex("A B D"), parse_regex("B .* D"), parse_regex(".* C .*")]
        raw = build_product_graph(diamond, regexes, minimize_tags=False)
        minimized = build_product_graph(diamond, regexes, minimize_tags=True)
        for traffic_path in (["A", "B", "D"], ["B", "C", "D"], ["A", "C", "D"],
                             ["B", "A", "C", "D"], ["C", "D"]):
            assert raw.traffic_path_acceptance(traffic_path) == \
                minimized.traffic_path_acceptance(traffic_path)

    def test_minimization_mapping_is_idempotent(self, diamond):
        pg = build_product_graph(diamond, [parse_regex(".* C .*")], minimize_tags=False)
        first = pg.minimize_tags()
        second = pg.minimize_tags()
        assert all(node == target for node, target in second.items())
        assert first  # non-empty mapping

    def test_repr(self, diamond):
        pg = build_product_graph(diamond, [])
        assert "ProductGraph" in repr(pg)
