"""Unit tests for workload distributions and generators."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.exceptions import WorkloadError
from repro.topology import fattree, leafspine
from repro.workloads import (
    CACHE_CDF,
    WEB_SEARCH_CDF,
    EmpiricalCDF,
    FlowStream,
    cache_distribution,
    distribution_by_name,
    generate_workload,
    incast_pairs,
    permutation_pairs,
    random_pairs,
    split_senders_receivers,
    stream_workload,
    uniform_distribution,
    web_search_distribution,
)


class TestEmpiricalCDF:
    def test_builtin_cdfs_are_valid(self):
        assert WEB_SEARCH_CDF.points[-1][0] == 1.0
        assert CACHE_CDF.points[-1][0] == 1.0

    def test_web_search_is_heavier_tailed_than_cache(self):
        assert WEB_SEARCH_CDF.mean() > CACHE_CDF.mean()
        assert WEB_SEARCH_CDF.quantile(0.99) > CACHE_CDF.quantile(0.99)

    def test_sampling_respects_bounds(self):
        rng = np.random.default_rng(0)
        samples = WEB_SEARCH_CDF.sample(rng, 1000)
        assert samples.min() >= 1
        assert samples.max() <= WEB_SEARCH_CDF.points[-1][1]

    def test_sampling_is_deterministic_given_seed(self):
        a = WEB_SEARCH_CDF.sample(np.random.default_rng(7), 100)
        b = WEB_SEARCH_CDF.sample(np.random.default_rng(7), 100)
        assert (a == b).all()

    def test_median_sample_close_to_cdf_median(self):
        rng = np.random.default_rng(1)
        samples = CACHE_CDF.sample(rng, 5000)
        assert abs(np.median(samples) - CACHE_CDF.quantile(0.5)) <= 2

    def test_scaled_distribution_shrinks_sizes(self):
        scaled = web_search_distribution(0.1)
        assert scaled.mean() < WEB_SEARCH_CDF.mean()
        assert scaled.points[0][1] >= 1

    def test_invalid_scale_rejected(self):
        with pytest.raises(WorkloadError):
            web_search_distribution(0)

    def test_uniform_distribution(self):
        dist = uniform_distribution(5, 10)
        rng = np.random.default_rng(0)
        samples = dist.sample(rng, 200)
        assert samples.min() >= 5 and samples.max() <= 10
        with pytest.raises(WorkloadError):
            uniform_distribution(10, 5)

    def test_invalid_cdfs_rejected(self):
        with pytest.raises(WorkloadError):
            EmpiricalCDF("bad", ((0.0, 1),))
        with pytest.raises(WorkloadError):
            EmpiricalCDF("bad", ((0.0, 5), (0.5, 3), (1.0, 10)))
        with pytest.raises(WorkloadError):
            EmpiricalCDF("bad", ((0.0, 1), (0.9, 10)))

    def test_distribution_by_name(self):
        assert distribution_by_name("web_search").name.startswith("web_search")
        assert distribution_by_name("cache").name.startswith("cache")
        with pytest.raises(WorkloadError):
            distribution_by_name("hadoop")


class TestSenderReceiverSelection:
    def test_split_interleaves_hosts(self):
        topo = fattree(4)
        senders, receivers = split_senders_receivers(topo)
        assert len(senders) + len(receivers) == len(topo.hosts)
        assert not set(senders) & set(receivers)

    def test_split_requires_two_hosts(self):
        topo = leafspine(1, 1, hosts_per_leaf=1)
        with pytest.raises(WorkloadError):
            split_senders_receivers(topo)

    def test_random_pairs_distinct_switches(self):
        topo = fattree(4)
        senders, receivers = random_pairs(topo, 4, seed=0)
        assert len(senders) == len(receivers) == 4
        for s, r in zip(senders, receivers):
            assert topo.attachment_switch(s) != topo.attachment_switch(r)

    def test_random_pairs_deterministic(self):
        topo = fattree(4)
        assert random_pairs(topo, 4, seed=3) == random_pairs(topo, 4, seed=3)


class TestGenerateWorkload:
    def test_flows_sorted_and_within_duration(self):
        topo = leafspine(2, 2, hosts_per_leaf=2)
        spec = generate_workload(topo, uniform_distribution(1, 5), load=0.5,
                                 duration=10.0, host_capacity=10.0, seed=0)
        times = [f.start_time for f in spec.flows]
        assert times == sorted(times)
        assert all(0.0 <= t < 10.0 for t in times)
        assert all(f.src_host != f.dst_host for f in spec.flows)

    def test_load_targets_offered_load(self):
        topo = fattree(4)
        spec = generate_workload(topo, uniform_distribution(4, 4), load=0.5,
                                 duration=200.0, host_capacity=10.0, seed=1)
        assert spec.offered_load(10.0) == pytest.approx(0.5, rel=0.2)

    def test_higher_load_generates_more_packets(self):
        topo = leafspine(2, 2, hosts_per_leaf=2)
        low = generate_workload(topo, uniform_distribution(2, 6), load=0.2,
                                duration=50.0, seed=2)
        high = generate_workload(topo, uniform_distribution(2, 6), load=0.8,
                                 duration=50.0, seed=2)
        assert high.total_packets > low.total_packets

    def test_paired_mode_respects_pairs(self):
        topo = fattree(4)
        senders, receivers = random_pairs(topo, 3, seed=0)
        spec = generate_workload(topo, uniform_distribution(1, 3), load=0.3, duration=20.0,
                                 senders=senders, receivers=receivers,
                                 pair_senders_receivers=True, seed=0)
        mapping = dict(zip(senders, receivers))
        assert all(mapping[f.src_host] == f.dst_host for f in spec.flows)

    def test_paired_mode_requires_equal_lengths(self):
        topo = fattree(4)
        with pytest.raises(WorkloadError):
            generate_workload(topo, uniform_distribution(1, 3), load=0.3, duration=10.0,
                              senders=["h0_0_0"], receivers=["h1_0_0", "h2_0_0"],
                              pair_senders_receivers=True)

    def test_invalid_load_rejected(self):
        topo = leafspine(2, 2, hosts_per_leaf=1)
        with pytest.raises(WorkloadError):
            generate_workload(topo, uniform_distribution(), load=0.0, duration=10.0)
        with pytest.raises(WorkloadError):
            generate_workload(topo, uniform_distribution(), load=2.0, duration=10.0)
        with pytest.raises(WorkloadError):
            generate_workload(topo, uniform_distribution(), load=0.5, duration=0.0)

    def test_max_flows_cap(self):
        topo = fattree(4)
        spec = generate_workload(topo, uniform_distribution(1, 2), load=0.9,
                                 duration=100.0, max_flows=10, seed=0)
        assert len(spec.flows) <= 10

    def test_determinism(self):
        topo = leafspine(2, 2, hosts_per_leaf=2)
        a = generate_workload(topo, cache_distribution(), load=0.5, duration=20.0, seed=9)
        b = generate_workload(topo, cache_distribution(), load=0.5, duration=20.0, seed=9)
        assert [(f.src_host, f.dst_host, f.size_packets, f.start_time) for f in a.flows] == \
            [(f.src_host, f.dst_host, f.size_packets, f.start_time) for f in b.flows]

    @given(st.floats(min_value=0.1, max_value=0.9), st.integers(min_value=0, max_value=10))
    @settings(max_examples=15, deadline=None)
    def test_any_load_and_seed_produce_valid_workloads(self, load, seed):
        topo = leafspine(2, 2, hosts_per_leaf=2)
        spec = generate_workload(topo, cache_distribution(0.5), load=load,
                                 duration=20.0, seed=seed)
        assert all(f.size_packets >= 1 for f in spec.flows)
        assert all(f.src_host in spec.senders for f in spec.flows)
        assert all(f.dst_host in spec.receivers for f in spec.flows)


class TestTrafficPatternPairs:
    def test_incast_all_senders_target_one_receiver(self):
        topo = fattree(4)
        senders, receivers = incast_pairs(topo, seed=3)
        assert len(set(receivers)) == 1
        sink = receivers[0]
        assert sink not in senders
        assert len(senders) == len(topo.hosts) - 1

    def test_incast_fanin_limits_senders(self):
        topo = fattree(4)
        senders, receivers = incast_pairs(topo, fanin=4, seed=3)
        assert len(senders) == 4 and len(receivers) == 4
        assert len(set(senders)) == 4

    def test_incast_explicit_receiver(self):
        topo = leafspine(2, 2, hosts_per_leaf=2)
        senders, receivers = incast_pairs(topo, receiver="h1_0")
        assert set(receivers) == {"h1_0"}
        assert "h1_0" not in senders

    def test_incast_deterministic_given_seed(self):
        topo = fattree(4)
        assert incast_pairs(topo, fanin=5, seed=7) == incast_pairs(topo, fanin=5, seed=7)
        assert incast_pairs(topo, fanin=5, seed=7) != incast_pairs(topo, fanin=5, seed=8)

    def test_incast_rejects_bad_arguments(self):
        topo = leafspine(2, 2, hosts_per_leaf=1)
        with pytest.raises(WorkloadError):
            incast_pairs(topo, receiver="not-a-host")
        with pytest.raises(WorkloadError):
            incast_pairs(topo, fanin=0)
        with pytest.raises(WorkloadError):
            incast_pairs(topo, fanin=len(topo.hosts))  # only hosts-1 candidates

    @given(st.integers(min_value=0, max_value=25))
    @settings(max_examples=25, deadline=None)
    def test_permutation_is_a_derangement(self, seed):
        topo = fattree(4)
        senders, receivers = permutation_pairs(topo, seed=seed)
        assert senders == topo.hosts
        assert sorted(receivers) == sorted(topo.hosts)     # a permutation...
        assert all(s != r for s, r in zip(senders, receivers))  # ...with no fixed point

    def test_permutation_deterministic_given_seed(self):
        topo = leafspine(2, 2, hosts_per_leaf=2)
        assert permutation_pairs(topo, seed=4) == permutation_pairs(topo, seed=4)


class TestLoadContractRegression:
    """The docstring/validation mismatch fixed by the scenario-diversity PR."""

    def test_docstring_matches_validated_bound(self):
        doc = generate_workload.__doc__
        assert "load <= 1.5" in doc
        assert "1.2" not in doc

    def test_start_after_documented(self):
        assert "start_after" in generate_workload.__doc__

    def test_bound_is_inclusive_at_1_5(self):
        topo = leafspine(2, 2, hosts_per_leaf=1)
        spec = generate_workload(topo, uniform_distribution(), load=1.5, duration=5.0)
        assert spec.target_load == 1.5

    def test_start_after_delays_first_arrival(self):
        topo = leafspine(2, 2, hosts_per_leaf=2)
        spec = generate_workload(topo, uniform_distribution(), load=0.8,
                                 duration=10.0, start_after=3.0, seed=1)
        assert spec.flows and min(f.start_time for f in spec.flows) >= 3.0
        assert max(f.start_time for f in spec.flows) < 13.0


class TestUniformByName:
    def test_uniform_distribution_by_name(self):
        dist = distribution_by_name("uniform")
        assert dist.name == "uniform"
        assert dist.quantile(1.0) == 20

    def test_uniform_scale_stretches_tail(self):
        assert distribution_by_name("uniform", 2.0).quantile(1.0) == 40


class TestStreamWorkload:
    """Contracts of the lazy/chunked workload path (ARCHITECTURE.md §7):
    chunk-size independence, seed determinism, re-iterability, time order."""

    def _stream(self, **kwargs):
        topo = leafspine(2, 2, hosts_per_leaf=2)
        defaults = dict(load=0.8, duration=20.0, seed=3)
        defaults.update(kwargs)
        return stream_workload(topo, uniform_distribution(), **defaults)

    def test_chunk_size_never_changes_the_workload(self):
        reference = list(self._stream(chunk=1))
        for chunk in (2, 7, 512):
            flows = list(self._stream(chunk=chunk))
            assert [(f.src_host, f.dst_host, f.size_packets, f.start_time,
                     f.flow_id) for f in flows] \
                == [(f.src_host, f.dst_host, f.size_packets, f.start_time,
                     f.flow_id) for f in reference]

    def test_stream_is_reiterable_and_deterministic(self):
        stream = self._stream()
        first, second = list(stream), list(stream)
        assert [f.__dict__ for f in first] == [f.__dict__ for f in second]
        again = list(self._stream())
        assert [f.__dict__ for f in first] == [f.__dict__ for f in again]
        assert [f.__dict__ for f in first] \
            != [f.__dict__ for f in self._stream(seed=4)]

    def test_flows_arrive_in_time_order_with_sequential_ids(self):
        flows = list(self._stream())
        assert flows, "expected a non-empty stream at load 0.8"
        times = [f.start_time for f in flows]
        assert times == sorted(times)
        assert [f.flow_id for f in flows] == list(range(len(flows)))

    def test_start_after_delays_the_window(self):
        flows = list(self._stream(start_after=5.0, duration=10.0))
        assert min(f.start_time for f in flows) >= 5.0
        assert max(f.start_time for f in flows) < 15.0

    def test_paired_mode_fixes_each_senders_receiver(self):
        topo = leafspine(2, 2, hosts_per_leaf=2)
        senders, receivers = split_senders_receivers(topo)
        stream = stream_workload(topo, uniform_distribution(), load=0.8,
                                 duration=20.0, seed=3, senders=senders,
                                 receivers=receivers,
                                 pair_senders_receivers=True)
        pairing = dict(zip(senders, receivers))
        for flow in stream:
            assert pairing[flow.src_host] == flow.dst_host

    def test_returns_flowstream_metadata(self):
        stream = self._stream()
        assert isinstance(stream, FlowStream)
        assert stream.target_load == 0.8
        assert stream.duration == 20.0
        assert stream.distribution_name == "uniform"
        # Default selection is the disjoint half/half split, like the eager path.
        assert not set(stream.senders) & set(stream.receivers)
        assert len(stream.senders) + len(stream.receivers) == 4

    def test_validation_mirrors_eager_generator(self):
        topo = leafspine(2, 2, hosts_per_leaf=2)
        with pytest.raises(WorkloadError):
            stream_workload(topo, uniform_distribution(), load=1.6, duration=5.0)
        with pytest.raises(WorkloadError):
            stream_workload(topo, uniform_distribution(), load=0.5, duration=0.0)
        with pytest.raises(WorkloadError):
            stream_workload(topo, uniform_distribution(), load=0.5, duration=5.0,
                            chunk=0)
        with pytest.raises(WorkloadError):
            stream_workload(topo, uniform_distribution(), load=0.5, duration=5.0,
                            senders=["h0"], receivers=["h1", "h2"],
                            pair_senders_receivers=True)
