"""Unit tests for the semantic monotonicity/isotonicity checker.

The key contracts: a *witness* is always a genuine counterexample (it replays
through ``Rank`` comparison on re-evaluation), the bundled isotonic policies
are certified, and the semantic verdict is sound with respect to the
syntactic passes (hypothesis property: syntactic pass => no semantic
witness).
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import ast, policies
from repro.core.analysis import (
    IsotonicityWitness,
    MonotonicityWitness,
    SearchDomain,
    check_isotonicity,
    check_monotonicity,
    check_semantic_isotonicity,
    check_semantic_monotonicity,
    coerce_expression,
)
from repro.core.analysis.semantic import _extend
from repro.core.builder import if_, lt, matches, minimize, path, sub
from repro.core.rank import Rank
from repro.exceptions import PolicyAnalysisError


def rank_at(expr, metrics, regexes=None):
    """Re-evaluate ``expr`` on an abstract (pathless) context."""
    return expr.evaluate(ast.PathContext((), dict(metrics), dict(regexes or {})))


class TestCertification:
    """Policies the syntactic passes accept must be semantically clean."""

    @pytest.mark.parametrize("name", sorted(policies.ALL_POLICIES))
    def test_all_bundled_policies_semantically_monotone(self, name):
        result = check_semantic_monotonicity(policies.ALL_POLICIES[name]())
        assert result.is_monotone
        assert result.witness is None
        assert result.points_checked > 0

    @pytest.mark.parametrize("name", ["P1", "P2", "P4", "P5", "P6", "P7", "P8"])
    def test_isotonic_bundled_policies_certified(self, name):
        result = check_semantic_isotonicity(policies.ALL_POLICIES[name]())
        assert result.is_isotonic
        assert result.witness is None
        assert bool(result)

    def test_semantic_agrees_with_syntactic_on_the_registry(self):
        # Non-isotonic by the syntactic pass AND a concrete witness exists:
        # P3 (max-like metric ordered first) and P9 (threshold guard).
        for name in ("P3", "P9"):
            assert check_isotonicity(
                policies.ALL_POLICIES[name]()).needs_metric_decomposition
            assert not check_semantic_isotonicity(
                policies.ALL_POLICIES[name]()).is_isotonic


class TestP9Witness:
    """The paper's congestion-aware policy: the canonical non-isotonic case."""

    @pytest.fixture(scope="class")
    def result(self):
        return check_semantic_isotonicity(policies.congestion_aware())

    def test_witness_found(self, result):
        assert not result.is_isotonic
        assert not bool(result)
        assert isinstance(result.witness, IsotonicityWitness)

    def test_witness_replays_through_rank_comparison(self, result):
        w = result.witness
        expr = policies.congestion_aware().expression
        # The recorded ranks are what the policy actually computes...
        assert rank_at(expr, w.metrics_a) == w.rank_a
        assert rank_at(expr, w.metrics_b) == w.rank_b
        assert rank_at(expr, _extend(w.metrics_a, w.extension)) == w.extended_rank_a
        assert rank_at(expr, _extend(w.metrics_b, w.extension)) == w.extended_rank_b
        # ...and they witness a genuine preference inversion.
        assert w.rank_a < w.rank_b
        assert w.extended_rank_a > w.extended_rank_b

    def test_witness_straddles_the_threshold(self, result):
        w = result.witness
        extended = _extend(w.metrics_a, w.extension)
        # The inversion mechanism is the utilization threshold: path a starts
        # below 0.8 and the extension pushes it across.
        assert w.metrics_a["util"] < 0.8 <= extended["util"]

    def test_describe_mentions_both_paths(self, result):
        text = result.witness.describe()
        assert "path a" in text and "path b" in text
        assert "inverts" in text


class TestMonotonicityWitness:
    def test_subtracting_a_metric_yields_witness(self):
        policy = minimize(sub(ast.Const(10.0), path.len))
        result = check_semantic_monotonicity(policy)
        assert not result.is_monotone
        w = result.witness
        assert isinstance(w, MonotonicityWitness)
        # Replay: the extended path really ranks strictly better.
        expr = policy.expression
        assert rank_at(expr, w.metrics) == w.base_rank
        assert rank_at(expr, _extend(w.metrics, w.extension)) == w.extended_rank
        assert w.extended_rank < w.base_rank
        assert "rank decreases" in w.describe()

    def test_monotone_policy_has_no_witness(self):
        result = check_semantic_monotonicity(minimize(sub(path.lat, 1)))
        assert result.is_monotone and result.witness is None


class TestSearchDomain:
    def test_grids_enriched_with_guard_constants(self):
        domain = SearchDomain.for_expression(
            policies.congestion_aware(0.8).expression)
        grid = domain.value_grids["util"]
        # Points on both sides of the threshold, and the threshold itself.
        assert 0.8 in grid
        assert any(0.8 - 0.06 < v < 0.8 for v in grid)
        assert any(0.8 < v < 0.8 + 0.06 for v in grid)

    def test_vector_and_extension_caps_respected(self):
        domain = SearchDomain.for_expression(
            policies.congestion_aware().expression)
        assert len(domain.vectors(("util", "len"))) <= domain.max_vectors
        assert len(domain.extensions(("util", "len"))) <= domain.max_extensions

    def test_extensions_iterate_worst_first(self):
        domain = SearchDomain.for_expression(policies.minimum_utilization().expression)
        extensions = domain.extensions(("util",))
        utils = [e["util"] for e in extensions]
        assert utils == sorted(utils, reverse=True)


class TestInputValidation:
    def test_coerce_expression_rejects_garbage(self):
        with pytest.raises(PolicyAnalysisError, match="check_monotonicity"):
            check_monotonicity("minimize(path.util)")  # text, not a Policy
        with pytest.raises(PolicyAnalysisError, match="check_isotonicity"):
            check_isotonicity(42)
        with pytest.raises(PolicyAnalysisError):
            check_semantic_monotonicity(None)
        with pytest.raises(PolicyAnalysisError):
            check_semantic_isotonicity(object())

    def test_coerce_expression_passthrough(self):
        policy = policies.minimum_utilization()
        assert coerce_expression(policy, "t") is policy.expression
        assert coerce_expression(policy.expression, "t") is policy.expression

    def test_results_are_not_truthiness_traps(self):
        # bool(result) mirrors the verdict, so `if check_...(p):` is safe.
        assert bool(check_monotonicity(policies.shortest_path()))
        assert bool(check_isotonicity(policies.shortest_path()))
        assert not bool(check_isotonicity(policies.congestion_aware()))


# --------------------------------------------------------------------------
# Hypothesis property: semantic witnesses imply syntactic rejection
# --------------------------------------------------------------------------

_ATTR = st.sampled_from([ast.Attr("util"), ast.Attr("lat"), ast.Attr("len")])
_CONST = st.sampled_from([0.0, 0.5, 1.0, 2.0]).map(ast.Const)
_LEAF = st.one_of(_ATTR, _CONST)


def _guard():
    return st.tuples(st.sampled_from(["util", "lat"]),
                     st.sampled_from([0.4, 0.8, 1.5])).map(
        lambda pair: ast.Compare("<", ast.Attr(pair[0]), ast.Const(pair[1])))


_EXPR = st.recursive(
    _LEAF,
    lambda children: st.one_of(
        st.tuples(st.sampled_from(["+", "min", "max"]), children, children).map(
            lambda t: ast.BinOp(t[0], t[1], t[2])),
        st.tuples(children, children).map(
            lambda t: ast.BinOp("-", t[0], t[1])),
        st.tuples(_guard(), children, children).map(
            lambda t: ast.If(t[0], t[1], t[2])),
        st.tuples(children, children).map(
            lambda t: ast.If(ast.RegexTest(matches(".* W .*").pattern),
                             t[0], t[1])),
    ),
    max_leaves=6,
)


class TestSoundnessProperty:
    @settings(max_examples=40, deadline=None)
    @given(expr=_EXPR)
    def test_syntactic_monotone_implies_no_semantic_witness(self, expr):
        if check_monotonicity(expr).is_monotone:
            result = check_semantic_monotonicity(expr)
            assert result.is_monotone, (
                f"syntactic pass but semantic witness for {expr}:\n"
                f"{result.witness.describe()}")

    @settings(max_examples=40, deadline=None)
    @given(expr=_EXPR)
    def test_syntactic_isotonic_implies_no_semantic_witness(self, expr):
        iso = check_isotonicity(expr)
        # Regex decomposition is handled structurally by the product graph,
        # so only metric-decomposition cases may carry semantic witnesses.
        if not iso.needs_metric_decomposition:
            result = check_semantic_isotonicity(expr)
            assert result.is_isotonic, (
                f"syntactic pass but semantic witness for {expr}:\n"
                f"{result.witness.describe()}")
