"""Unit tests for the rank algebra."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.core.rank import INFINITY, ZERO, Rank
from repro.exceptions import PolicyError

finite_floats = st.floats(min_value=-1e6, max_value=1e6, allow_nan=False)
rank_values = st.one_of(
    finite_floats,
    st.lists(finite_floats, min_size=1, max_size=4).map(tuple),
)


class TestConstruction:
    def test_scalar_from_int(self):
        assert Rank(3).scalar() == 3.0

    def test_scalar_from_float(self):
        assert Rank(0.5).scalar() == 0.5

    def test_tuple_rank(self):
        assert Rank((1, 2, 3)).values == (1.0, 2.0, 3.0)

    def test_copy_constructor(self):
        original = Rank((1, 2))
        assert Rank(original) == original

    def test_nested_ranks_flatten(self):
        nested = Rank.tuple_of([Rank(1), Rank((2, 3))])
        assert nested.values == (1.0, 2.0, 3.0)

    def test_empty_sequence_rejected(self):
        with pytest.raises(PolicyError):
            Rank(())

    def test_nan_rejected(self):
        with pytest.raises(PolicyError):
            Rank(float("nan"))

    def test_non_numeric_rejected(self):
        with pytest.raises(PolicyError):
            Rank(("a",))

    def test_scalar_of_tuple_raises(self):
        with pytest.raises(PolicyError):
            Rank((1, 2)).scalar()


class TestComparison:
    def test_scalar_ordering(self):
        assert Rank(1) < Rank(2)
        assert Rank(2) > Rank(1)
        assert Rank(2) == Rank(2.0)

    def test_lexicographic_ordering(self):
        assert Rank((1, 5)) < Rank((2, 0))
        assert Rank((1, 1)) < Rank((1, 2))
        assert Rank((2, 0)) > Rank((1, 99))

    def test_infinity_is_worst(self):
        assert Rank(5) < INFINITY
        assert INFINITY > Rank((100, 100))
        assert not (INFINITY < INFINITY)

    def test_padding_makes_short_and_long_comparable(self):
        assert Rank(1) == Rank((1, 0))
        assert Rank((1,)) < Rank((1, 1))

    def test_comparison_with_plain_numbers(self):
        assert Rank(1) < 2
        assert Rank(3) == 3

    def test_hash_consistency_with_padding(self):
        assert hash(Rank(1)) == hash(Rank((1, 0)))
        assert Rank(1) in {Rank((1, 0.0))}

    def test_infinite_flags(self):
        assert INFINITY.is_infinite
        assert not INFINITY.is_finite
        assert ZERO.is_finite


class TestArithmetic:
    def test_addition(self):
        assert (Rank(1) + Rank(2)).scalar() == 3.0

    def test_addition_with_number(self):
        assert (Rank(1) + 2).scalar() == 3.0
        assert (2 + Rank(1)).scalar() == 3.0

    def test_addition_absorbs_infinity(self):
        assert (INFINITY + Rank(5)).is_infinite
        assert (Rank(5) + INFINITY).is_infinite

    def test_tuple_addition_componentwise(self):
        assert (Rank((1, 2)) + Rank((3, 4))).values == (4.0, 6.0)

    def test_subtraction(self):
        assert (Rank(5) - Rank(2)).scalar() == 3.0

    def test_subtracting_infinity_raises(self):
        with pytest.raises(PolicyError):
            Rank(5) - INFINITY

    def test_scaling(self):
        assert (Rank((1, 2)) * 3).values == (3.0, 6.0)
        assert (3 * Rank(2)).scalar() == 6.0

    def test_scaling_by_non_number_raises(self):
        with pytest.raises(PolicyError):
            Rank(1) * "x"

    def test_combine_min_max(self):
        assert Rank(1).combine_min(Rank(2)) == Rank(1)
        assert Rank(1).combine_max(Rank(2)) == Rank(2)

    def test_tuple_of(self):
        assert Rank.tuple_of([1, Rank(2), (3, 4)]).values == (1.0, 2.0, 3.0, 4.0)

    def test_tuple_of_empty_raises(self):
        with pytest.raises(PolicyError):
            Rank.tuple_of([])


class TestRepr:
    def test_scalar_str(self):
        assert str(Rank(3)) == "3"
        assert str(Rank(0.5)) == "0.5"

    def test_infinity_str(self):
        assert str(INFINITY) == "inf"

    def test_tuple_str(self):
        assert str(Rank((1, 0.5))) == "(1, 0.5)"

    def test_repr_roundtrip_info(self):
        assert "Rank" in repr(Rank((1, 2)))


class TestProperties:
    """Property-based tests of the algebraic laws the protocol relies on."""

    @given(rank_values, rank_values)
    def test_ordering_is_total(self, a, b):
        ra, rb = Rank(a), Rank(b)
        assert (ra < rb) or (rb < ra) or (ra == rb)

    @given(rank_values, rank_values, rank_values)
    def test_ordering_is_transitive(self, a, b, c):
        ra, rb, rc = Rank(a), Rank(b), Rank(c)
        if ra <= rb and rb <= rc:
            assert ra <= rc

    @given(rank_values)
    def test_equality_reflexive_and_hash_consistent(self, a):
        ra, rb = Rank(a), Rank(a)
        assert ra == rb
        assert hash(ra) == hash(rb)

    @given(finite_floats, finite_floats)
    def test_scalar_ordering_matches_float_ordering(self, a, b):
        assert (Rank(a) < Rank(b)) == (a < b)

    @given(rank_values, st.floats(min_value=0.0, max_value=1e6, allow_nan=False))
    def test_adding_nonnegative_never_improves(self, a, delta):
        ra = Rank(a)
        assert ra + Rank(delta) >= ra

    @given(rank_values)
    def test_infinity_dominates_everything(self, a):
        assert Rank(a) <= INFINITY

    @given(rank_values, rank_values)
    def test_combine_min_is_commutative(self, a, b):
        assert Rank(a).combine_min(Rank(b)) == Rank(b).combine_min(Rank(a))
