"""Unit tests for the benchmark wall-clock regression diff tool."""

import json
import sys
from pathlib import Path

import pytest

BENCH_DIR = Path(__file__).resolve().parents[2] / "benchmarks"
sys.path.insert(0, str(BENCH_DIR))

import bench_diff  # noqa: E402  (path set up above)


def write_artifact(directory: Path, name: str, wall_s: float) -> None:
    directory.mkdir(parents=True, exist_ok=True)
    (directory / f"BENCH_{name}.json").write_text(
        json.dumps({"benchmark": name, "wall_s": wall_s, "preset": "quick"}))


class TestLoadArtifacts:
    def test_loads_directory_keyed_by_benchmark_name(self, tmp_path):
        write_artifact(tmp_path, "fig11", 2.5)
        write_artifact(tmp_path, "fig14", 1.0)
        artifacts = bench_diff.load_artifacts(tmp_path)
        assert set(artifacts) == {"fig11", "fig14"}
        assert artifacts["fig11"]["wall_s"] == 2.5

    def test_loads_single_file(self, tmp_path):
        write_artifact(tmp_path, "fig11", 2.5)
        artifacts = bench_diff.load_artifacts(tmp_path / "BENCH_fig11.json")
        assert set(artifacts) == {"fig11"}

    def test_skips_malformed_and_non_wall_clock_files(self, tmp_path):
        write_artifact(tmp_path, "good", 1.0)
        (tmp_path / "BENCH_broken.json").write_text("{not json")
        (tmp_path / "BENCH_pytest_benchmark.json").write_text(
            json.dumps({"machine_info": {}}))
        assert set(bench_diff.load_artifacts(tmp_path)) == {"good"}


class TestDiffSemantics:
    def test_within_threshold_is_ok(self):
        deltas = bench_diff.diff_artifacts(
            {"a": {"wall_s": 10.0}}, {"a": {"wall_s": 10.9}}, threshold=0.10)
        assert deltas[0].status == "ok" and not deltas[0].regressed

    def test_above_threshold_regresses(self):
        deltas = bench_diff.diff_artifacts(
            {"a": {"wall_s": 10.0}}, {"a": {"wall_s": 11.5}}, threshold=0.10)
        assert deltas[0].regressed and deltas[0].status == "REGRESSED"

    def test_new_and_removed_benchmarks_never_fail(self):
        deltas = bench_diff.diff_artifacts(
            {"old": {"wall_s": 5.0}}, {"new": {"wall_s": 5.0}})
        statuses = {d.name: d.status for d in deltas}
        assert statuses == {"old": "removed", "new": "new"}
        assert not any(d.regressed for d in deltas)

    def test_improvement_labelled(self):
        deltas = bench_diff.diff_artifacts(
            {"a": {"wall_s": 10.0}}, {"a": {"wall_s": 5.0}})
        assert deltas[0].status == "improved"


class TestMainExitCodes:
    def test_exit_zero_when_no_regression(self, tmp_path, capsys):
        write_artifact(tmp_path / "base", "fig11", 10.0)
        write_artifact(tmp_path / "cur", "fig11", 10.5)
        code = bench_diff.main([str(tmp_path / "base"), str(tmp_path / "cur")])
        assert code == 0
        assert "OK" in capsys.readouterr().out

    def test_exit_nonzero_on_regression(self, tmp_path, capsys):
        write_artifact(tmp_path / "base", "fig11", 10.0)
        write_artifact(tmp_path / "cur", "fig11", 12.0)
        code = bench_diff.main([str(tmp_path / "base"), str(tmp_path / "cur")])
        assert code == 1
        assert "REGRESSED" in capsys.readouterr().out

    def test_missing_baseline_is_skipped_not_failed(self, tmp_path):
        write_artifact(tmp_path / "cur", "fig11", 1.0)
        (tmp_path / "base").mkdir()
        assert bench_diff.main([str(tmp_path / "base"), str(tmp_path / "cur")]) == 0

    def test_missing_current_is_an_error(self, tmp_path):
        write_artifact(tmp_path / "base", "fig11", 1.0)
        (tmp_path / "cur").mkdir()
        assert bench_diff.main([str(tmp_path / "base"), str(tmp_path / "cur")]) == 2

    def test_custom_threshold(self, tmp_path):
        write_artifact(tmp_path / "base", "fig11", 10.0)
        write_artifact(tmp_path / "cur", "fig11", 12.0)
        assert bench_diff.main([str(tmp_path / "base"), str(tmp_path / "cur"),
                                "--threshold", "0.5"]) == 0
