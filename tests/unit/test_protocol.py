"""Unit tests for the Contra protocol runtime: probes, tables, switch logic."""

import pytest

from repro.core.attributes import MetricVector
from repro.core.compiler import compile_policy
from repro.core.policies import MU
from repro.core.builder import if_, inf, matches, minimize, path
from repro.protocol import ContraSystem
from repro.protocol.probe import ProbePayload, make_probe_packet, payload_from_packet
from repro.protocol.tables import (
    BestChoiceTable,
    FlowletTable,
    ForwardingEntry,
    ForwardingTable,
    LoopDetectionTable,
)
from repro.simulator import Network
from repro.topology import leafspine


class TestProbePayload:
    def test_roundtrip_through_packet(self):
        payload = ProbePayload("leaf1", 0, 7, 2, MetricVector(("util", "len"), (0.4, 2.0)))
        packet = make_probe_packet(payload, "spine0", payload_bits=96)
        recovered = payload_from_packet(packet)
        assert recovered == payload
        assert packet.is_probe
        assert packet.size_bytes > 42

    def test_advanced_updates_tag_and_metrics(self):
        payload = ProbePayload("leaf1", 1, 3, 0, MetricVector(("util",), (0.1,)))
        advanced = payload.advanced(5, MetricVector(("util",), (0.7,)))
        assert advanced.tag == 5
        assert advanced.metrics.get("util") == 0.7
        assert advanced.version == payload.version
        assert payload.metrics.get("util") == 0.1


class TestForwardingTable:
    def entry(self, nhop="spine0", version=1, util=0.5, updated=0.0):
        return ForwardingEntry(MetricVector(("util",), (util,)), 0, nhop, version, updated)

    def test_install_and_lookup(self):
        table = ForwardingTable()
        key = ("leaf1", 0, 0)
        assert table.lookup(key) is None
        table.install(key, self.entry())
        assert table.lookup(key).next_hop == "spine0"
        assert len(table) == 1

    def test_entries_for_destination(self):
        table = ForwardingTable()
        table.install(("leaf1", 0, 0), self.entry())
        table.install(("leaf1", 1, 0), self.entry("spine1"))
        table.install(("leaf2", 0, 0), self.entry())
        assert len(table.entries_for_destination("leaf1")) == 2

    def test_entries_via_next_hop(self):
        table = ForwardingTable()
        table.install(("leaf1", 0, 0), self.entry("spine0"))
        table.install(("leaf2", 0, 0), self.entry("spine1"))
        assert table.entries_via("spine0") == [("leaf1", 0, 0)]

    def test_remove(self):
        table = ForwardingTable()
        table.install(("leaf1", 0, 0), self.entry())
        table.remove(("leaf1", 0, 0))
        assert table.lookup(("leaf1", 0, 0)) is None
        table.remove(("leaf1", 0, 0))  # idempotent


class TestBestChoiceTable:
    def test_set_get_clear(self):
        table = BestChoiceTable()
        assert table.get("leaf1") is None
        table.set("leaf1", ("leaf1", 0, 0))
        assert table.get("leaf1") == ("leaf1", 0, 0)
        table.clear("leaf1")
        assert table.get("leaf1") is None
        assert len(table) == 0


class TestFlowletTable:
    def test_install_lookup_expire_by_timeout(self):
        table = FlowletTable(timeout=1.0)
        fid = table.flowlet_id(("h1", "h2", 7))
        table.install("leaf1", 0, 0, fid, "spine0", 0, now=0.0)
        assert table.lookup("leaf1", 0, 0, fid, now=0.5).next_hop == "spine0"
        assert table.lookup("leaf1", 0, 0, fid, now=2.0) is None

    def test_touch_extends_lifetime(self):
        table = FlowletTable(timeout=1.0)
        entry = table.install("leaf1", 0, 0, 3, "spine0", 0, now=0.0)
        table.touch(entry, now=0.9)
        assert table.lookup("leaf1", 0, 0, 3, now=1.5) is not None

    def test_key_includes_tag_and_pid(self):
        """Policy-aware flowlet switching: different tags pin independently (§5.3)."""
        table = FlowletTable(timeout=1.0)
        table.install("leaf1", 0, 0, 3, "spine0", 0, now=0.0)
        assert table.lookup("leaf1", 1, 0, 3, now=0.1) is None
        assert table.lookup("leaf1", 0, 1, 3, now=0.1) is None

    def test_expire_via_failed_next_hop(self):
        table = FlowletTable(timeout=10.0)
        table.install("leaf1", 0, 0, 1, "spine0", 0, now=0.0)
        table.install("leaf2", 0, 0, 2, "spine1", 0, now=0.0)
        assert table.expire_via("spine0") == 1
        assert table.lookup("leaf1", 0, 0, 1, now=0.1) is None
        assert table.lookup("leaf2", 0, 0, 2, now=0.1) is not None

    def test_expire_flowlet_everywhere(self):
        table = FlowletTable(timeout=10.0)
        table.install("leaf1", 0, 0, 5, "spine0", 0, now=0.0)
        table.install("leaf1", 1, 0, 5, "spine1", 1, now=0.0)
        table.install("leaf1", 0, 0, 6, "spine0", 0, now=0.0)
        assert table.expire_flowlet_everywhere(5) == 2
        assert len(table) == 1


class TestLoopDetectionTable:
    def test_stable_ttls_do_not_trigger(self):
        table = LoopDetectionTable(threshold=4)
        for ttl in (60, 60, 59, 60):
            assert not table.observe(("f",), ttl, now=0.1)

    def test_growing_delta_triggers(self):
        table = LoopDetectionTable(threshold=4)
        triggered = [table.observe(("f",), ttl, now=0.1) for ttl in (60, 58, 56, 54, 52)]
        assert any(triggered)

    def test_reset_after_detection(self):
        table = LoopDetectionTable(threshold=2)
        for ttl in (60, 57):
            table.observe(("f",), ttl, now=0.1)
        assert table.observe(("f",), 54, now=0.1) is False or True  # detection may fire here
        # After a detection the record restarts, so a stable TTL does not re-trigger.
        assert not table.observe(("f",), 54, now=0.2)

    def test_stale_records_expire(self):
        table = LoopDetectionTable(threshold=2, entry_timeout=1.0)
        table.observe(("f",), 60, now=0.0)
        # Far in the future the old min/max are forgotten.
        assert not table.observe(("f",), 50, now=10.0)


def build_contra_network(policy=None, probe_period=0.25, **system_kwargs):
    topo = leafspine(2, 2, hosts_per_leaf=1, capacity=50.0)
    compiled = compile_policy(policy if policy is not None else MU(), topo)
    system = ContraSystem(compiled, probe_period=probe_period, **system_kwargs)
    network = Network(topo, system)
    return topo, compiled, system, network


class TestContraRouting:
    def test_probes_populate_forwarding_tables(self):
        _, _, system, network = build_contra_network()
        network.run(2.0)
        logic = system.logic("leaf0")
        snapshot = logic.forwarding_snapshot()
        assert any(key[0] == "leaf1" for key in snapshot)
        assert logic.best_next_hop("leaf1") in ("spine0", "spine1")

    def test_probe_versions_increase(self):
        _, _, system, network = build_contra_network(probe_period=0.2)
        network.run(2.0)
        logic = system.logic("leaf0")
        versions = [entry[1] for entry in logic.forwarding_snapshot().values()]
        assert max(versions) >= 5

    def test_best_next_hop_tracks_utilization(self):
        """Loading one spine path shifts the preferred next hop to the other."""
        topo, _, system, network = build_contra_network(probe_period=0.2)
        network.run(1.0)
        congested = network.link("leaf0", "spine0")
        # Saturate the leaf0->spine0 link with background transmissions.
        from repro.simulator.packet import Packet, PacketKind
        for _ in range(60):
            congested.enqueue(Packet(kind=PacketKind.DATA, src_host="x", dst_host="y"))
        network.sim.run(until=3.0)
        assert system.logic("leaf0").best_next_hop("leaf1") == "spine1"

    def test_probe_for_unknown_transition_is_dropped(self):
        topo, compiled, system, network = build_contra_network(
            policy=minimize(if_(matches("leaf0 spine0 leaf1"), 0, inf)))
        network.run(1.0)
        logic = system.logic("leaf0")
        # Only product-graph-compliant entries exist.
        for (origin, tag, pid) in logic.forwarding_snapshot():
            assert origin in topo.switches

    def test_split_horizon_disabled_still_converges(self):
        _, _, system, network = build_contra_network(split_horizon=False)
        network.run(2.0)
        assert system.logic("leaf0").best_next_hop("leaf1") is not None

    def test_packet_header_bits_positive(self):
        _, _, system, _ = build_contra_network()
        assert system.packet_header_bits() >= 2

    def test_probe_all_switches_mode(self):
        _, _, system, network = build_contra_network(probe_all_switches=True)
        network.run(1.0)
        # Spines originate probes too, so leaves know routes to spines.
        assert system.logic("leaf0").best_next_hop("spine0") == "spine0"

    def test_failure_detection_on_probe_silence(self):
        _, _, system, network = build_contra_network(probe_period=0.2, failure_periods=3)
        network.fail_link("leaf0", "spine0", at_time=2.0)
        network.run(6.0)
        logic = system.logic("leaf0")
        assert logic._believed_failed.get("spine0") is True
        assert network.stats.failure_detections >= 1
        assert logic.best_next_hop("leaf1") == "spine1"

    def test_unversioned_mode_still_converges_on_leafspine(self):
        _, _, system, network = build_contra_network(use_versioning=False)
        network.run(2.0)
        assert system.logic("leaf0").best_next_hop("leaf1") in ("spine0", "spine1")
