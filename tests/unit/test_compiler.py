"""Unit tests for the compiler, device configurations and P4 generation."""

import math

import pytest

from repro.core import policies
from repro.core.builder import if_, inf, matches, minimize, path, rank_tuple, sub
from repro.core.compiler import CompileOptions, compile_policy
from repro.core.p4gen import generate_all_p4, generate_p4
from repro.core.rank import INFINITY, Rank
from repro.exceptions import CompilationError, PolicyAnalysisError
from repro.topology import fattree, leafspine
from repro.topology.graph import Topology


@pytest.fixture
def diamond():
    topo = Topology("figure6")
    for switch in ("A", "B", "C", "D"):
        topo.add_switch(switch)
    for a, b in (("A", "B"), ("A", "C"), ("B", "C"), ("B", "D"), ("C", "D")):
        topo.add_link(a, b)
    return topo


def flat_metrics(util=0.0, lat=0.05):
    def lookup(a, b):
        return {"util": util, "lat": lat}
    return lookup


class TestCompilation:
    @pytest.mark.parametrize("key", sorted(policies.ALL_POLICIES))
    def test_all_figure3_policies_compile_on_leafspine(self, key):
        topo = leafspine(2, 2, hosts_per_leaf=1)
        compiled = compile_policy(policies.ALL_POLICIES[key](), topo)
        assert set(compiled.device_configs) == set(topo.switches)
        assert compiled.num_probe_ids >= 1

    def test_compile_records_analysis_results(self, diamond):
        compiled = compile_policy(policies.congestion_aware(), diamond)
        assert compiled.monotonicity.is_monotone
        assert not compiled.isotonicity.is_isotonic
        assert compiled.num_probe_ids == 2

    def test_probe_period_respects_rtt_bound(self, diamond):
        compiled = compile_policy(policies.MU(), diamond)
        assert compiled.probe_period >= 0.5 * diamond.max_rtt()

    def test_non_monotone_policy_rejected_by_default(self, diamond):
        bad = minimize(sub(10, path.len))
        with pytest.raises(PolicyAnalysisError):
            compile_policy(bad, diamond)

    def test_non_monotone_policy_allowed_when_not_strict(self, diamond):
        bad = minimize(sub(10, path.len))
        options = CompileOptions(strict_monotonicity=False)
        compiled = compile_policy(bad, diamond, options)
        assert not compiled.monotonicity.is_monotone

    def test_empty_topology_rejected(self):
        with pytest.raises(CompilationError):
            compile_policy(policies.MU(), Topology("empty"))

    def test_compile_time_is_recorded(self, diamond):
        compiled = compile_policy(policies.MU(), diamond)
        assert compiled.compile_time > 0

    def test_device_lookup(self, diamond):
        compiled = compile_policy(policies.MU(), diamond)
        assert compiled.device("A").switch == "A"
        with pytest.raises(CompilationError):
            compiled.device("Z")


class TestDeviceConfig:
    def test_probe_transitions_cover_product_graph_edges(self, diamond):
        compiled = compile_policy(policies.MU(), diamond)
        config_a = compiled.device("A")
        # MU has one tag everywhere; probes from B tag 0 and C tag 0 land in A tag 0.
        assert config_a.next_tag_for_probe("B", 0) == 0
        assert config_a.next_tag_for_probe("C", 0) == 0
        assert config_a.next_tag_for_probe("D", 0) is None  # no A-D link

    def test_multicast_targets_follow_topology(self, diamond):
        compiled = compile_policy(policies.MU(), diamond)
        config_d = compiled.device("D")
        assert set(config_d.multicast_targets(config_d.probe_origin_tag)) == {"B", "C"}

    def test_acceptance_for_waypoint_policy(self, diamond):
        policy = minimize(if_(matches(".* C .*"), path.util, inf))
        compiled = compile_policy(policy, diamond)
        config_a = compiled.device("A")
        accepting_tags = [tag for tag in config_a.tags
                          if any(config_a.acceptance_of(tag).values())]
        non_accepting = [tag for tag in config_a.tags
                         if not any(config_a.acceptance_of(tag).values())]
        assert accepting_tags and non_accepting

    def test_bits_accounting(self, diamond):
        compiled = compile_policy(policies.MU(), diamond)
        config = compiled.device("A")
        assert config.tag_bits() >= 1
        assert config.metric_bits() == 32
        assert config.probe_bits() > config.metric_bits()
        assert config.packet_tag_bits() >= 2

    def test_unknown_tag_raises(self, diamond):
        compiled = compile_policy(policies.MU(), diamond)
        with pytest.raises(CompilationError):
            compiled.device("A").tag_info(42)

    def test_state_estimate_positive_and_additive(self, diamond):
        compiled = compile_policy(policies.MU(), diamond)
        estimate = compiled.device("A").state_estimate()
        assert estimate.total_bytes == (estimate.fwdt_bytes + estimate.bestt_bytes
                                        + estimate.flowlet_bytes + estimate.loop_table_bytes)
        assert estimate.total_kb > 0

    def test_state_grows_with_topology_size(self):
        small = compile_policy(policies.MU(), fattree(4, hosts_per_edge=0))
        large = compile_policy(policies.MU(), fattree(8, hosts_per_edge=0))
        assert large.max_state_bytes() > small.max_state_bytes()

    def test_regex_policy_needs_more_state_than_mu(self, diamond):
        mu = compile_policy(policies.MU(), diamond)
        wp = compile_policy(minimize(if_(matches(".* C .*"), path.util, inf)), diamond)
        assert wp.max_state_bytes() >= mu.max_state_bytes()

    def test_total_state_is_sum_over_switches(self, diamond):
        compiled = compile_policy(policies.MU(), diamond)
        assert compiled.total_state_bytes() == sum(
            cfg.state_estimate().total_bytes for cfg in compiled.device_configs.values())


class TestReferenceOracle:
    def test_shortest_path_policy_picks_direct_route(self, diamond):
        compiled = compile_policy(policies.shortest_path(), diamond)
        rank, best = compiled.reference_best_paths("A", "D", flat_metrics())
        assert rank == Rank(2)
        assert sorted(best) == [["A", "B", "D"], ["A", "C", "D"]]

    def test_min_util_policy_avoids_congested_link(self, diamond):
        def metrics(a, b):
            return {"util": 0.9 if {a, b} == {"B", "D"} else 0.1, "lat": 0.05}
        compiled = compile_policy(policies.MU(), diamond)
        rank, best = compiled.reference_best_paths("A", "D", metrics)
        assert ["A", "C", "D"] in best
        assert all("B" not in path_ or path_.index("B") != len(path_) - 2 for path_ in best)

    def test_waypoint_policy_forces_waypoint(self, diamond):
        policy = minimize(if_(matches(".* C .*"), path.util, inf))
        compiled = compile_policy(policy, diamond)
        rank, best = compiled.reference_best_paths("A", "D", flat_metrics(util=0.2))
        assert rank.is_finite
        assert all("C" in path_ for path_ in best)

    def test_impossible_policy_yields_infinite_rank(self, diamond):
        policy = minimize(if_(matches(".* Z .*"), path.util, inf))
        compiled = compile_policy(policy, diamond, CompileOptions(strict_monotonicity=False))
        rank, best = compiled.reference_best_paths("A", "D", flat_metrics())
        assert rank == INFINITY
        assert best == []

    def test_figure5_scenario_a_prefers_abd_b_prefers_bcd(self, diamond):
        """Figure 5: A must use A-B-D even though B itself prefers B-C-D."""
        def metrics(a, b):
            utils = {("B", "D"): 0.3, ("D", "B"): 0.3,
                     ("B", "C"): 0.1, ("C", "B"): 0.1,
                     ("C", "D"): 0.2, ("D", "C"): 0.2}
            return {"util": utils.get((a, b), 0.1), "lat": 0.05}
        policy = minimize(if_(matches("A B D"), 0, path.util))
        compiled = compile_policy(policy, diamond)
        rank_a, best_a = compiled.reference_best_paths("A", "D", metrics)
        assert best_a == [["A", "B", "D"]]
        rank_b, best_b = compiled.reference_best_paths("B", "D", metrics)
        assert ["B", "C", "D"] in best_b


class TestP4Generation:
    def test_program_generated_per_switch(self, diamond):
        compiled = compile_policy(policies.MU(), diamond)
        programs = generate_all_p4(compiled)
        assert set(programs) == set(diamond.switches)

    def test_program_contains_expected_sections(self, diamond):
        compiled = compile_policy(policies.MU(), diamond)
        program = generate_p4(compiled.device("A"), "MU")
        assert "contra_probe_t" in program.source
        assert "fwdt_metric" in program.source
        assert "probe_transition" in program.source
        assert "probe_multicast" in program.source
        assert "V1Switch" in program.source
        assert program.lines_of_code > 50

    def test_metric_updates_reflect_policy_attributes(self, diamond):
        compiled = compile_policy(policies.source_local_preference("A"), diamond)
        program = generate_p4(compiled.device("B"), "P8")
        assert "metric_util" in program.source
        assert "metric_lat" in program.source

    def test_table_entries_counted(self, diamond):
        compiled = compile_policy(policies.MU(), diamond)
        program = generate_p4(compiled.device("A"))
        assert program.table_entries >= len(compiled.device("A").probe_transition)
