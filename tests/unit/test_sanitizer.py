"""Violation-injection tests for the runtime sanitizer plane.

Each test deliberately breaks one invariant class the sanitizer guards —
stealing a delivery, delivering a stale-epoch probe, scheduling into the
past, desyncing a ForwardingShadow mirror, decreasing a FwdT version,
pointing BestT at a missing key, losing an RTO timer chain — and asserts
the sanitizer reports it under the right rule with the right provenance tag.
The plane itself must therefore run in its default raise mode here, so the
whole module opts out of the CONTRA_SANITIZE=1 sweep (which would be
redundant anyway: every network below is built with ``sanitize=True``).
"""

import dataclasses
import heapq

import pytest

from repro.core.attributes import MetricVector
from repro.core.compiler import compile_policy
from repro.core.policies import MU
from repro.baselines import ShortestPathSystem
from repro.nputil import HAVE_NUMPY, np
from repro.protocol import ContraSystem
from repro.protocol.probe import ProbePayload, make_probe_packet
from repro.simulator import Flow, Network, Simulator
from repro.simulator.sanitizer import (SanitizerError, SanitizingSimulator,
                                       Violation)
from repro.topology import leafspine

pytestmark = pytest.mark.no_sanitize


def _noop() -> None:
    pass


def build_contra_network(probe_vectorize=False, probe_period=0.25):
    topo = leafspine(2, 2, hosts_per_leaf=1, capacity=50.0)
    compiled = compile_policy(MU(), topo)
    system = ContraSystem(compiled, probe_period=probe_period,
                          probe_vectorize=probe_vectorize)
    network = Network(topo, system, sanitize=True)
    return system, network


class TestPlumbing:
    def test_default_simulator_is_the_plain_engine(self):
        sim = Simulator()
        assert type(sim) is Simulator
        assert not hasattr(sim, "sanitizer")

    def test_sanitize_flag_swaps_in_the_sanitizing_engine(self):
        sim = Simulator(sanitize=True)
        assert type(sim) is SanitizingSimulator
        assert sim.sanitizer.ok

    def test_default_network_carries_no_sanitizer(self):
        net = Network(leafspine(2, 2, hosts_per_leaf=1), ShortestPathSystem())
        assert net.sanitizer is None

    def test_clean_sanitized_run_matches_default_and_reports_ok(self):
        """Same topology/system/flows with and without the plane: identical
        stats, zero violations, and the checks actually ran."""
        summaries = []
        for sanitize in (False, True):
            net = Network(leafspine(2, 2, hosts_per_leaf=1),
                          ShortestPathSystem(), sanitize=sanitize)
            net.schedule_flows([Flow("h0_0", "h1_0", 20, 0.1)])
            stats = net.run(30.0)
            summaries.append(stats.summary())
        assert summaries[0] == summaries[1]
        net_s = Network(leafspine(2, 2, hosts_per_leaf=1),
                        ShortestPathSystem(), sanitize=True)
        net_s.schedule_flows([Flow("h0_0", "h1_0", 20, 0.1)])
        net_s.run(30.0)
        assert net_s.sanitizer.ok
        assert net_s.sanitizer.checks_run > 0

    def test_violation_render_carries_provenance(self):
        violation = Violation(1.5, "demo", "something broke",
                              tag=("Host._transmit", "Host.start_flow"))
        text = violation.render()
        assert "demo" in text and "Host._transmit" in text
        assert violation.to_json_dict()["tag"] == ["Host._transmit",
                                                   "Host.start_flow"]


class TestEngineInvariants:
    def test_schedule_into_the_past_is_time_monotonicity(self):
        sim = Simulator(sanitize=True)
        sim.call_at(1.0, _noop)
        sim.run(until=2.0)
        # Bypass the Simulator API: raw heap entry behind the clock.
        heapq.heappush(sim._queue, (0.5, sim._sequence, _noop, ()))
        sim._sequence += 1
        with pytest.raises(SanitizerError) as err:
            sim.run()
        assert err.value.violation.rule == "time-monotonicity"

    def test_raw_heap_entry_is_untagged_event(self):
        sim = Simulator(sanitize=True)
        heapq.heappush(sim._queue, (0.5, sim._sequence, _noop, ()))
        sim._sequence += 1
        with pytest.raises(SanitizerError) as err:
            sim.run()
        assert err.value.violation.rule == "untagged-event"

    def test_api_scheduled_events_carry_their_site(self):
        sim = Simulator(sanitize=True)
        sim.call_later(0.5, _noop)
        (entry,) = sim._queue
        tag = sim._tags[entry[1]]
        assert tag[0] == "_noop"
        assert "test_api_scheduled_events_carry_their_site" in tag[1]


class TestTransportInvariants:
    def test_stolen_delivery_breaks_conservation(self):
        # capacity=1 packet/ms so the host uplink builds a real backlog.
        net = Network(leafspine(2, 2, hosts_per_leaf=1, capacity=1.0),
                      ShortestPathSystem(), sanitize=True)
        net.schedule_flows([Flow("h0_0", "h1_0", 20, 0.0)])
        uplink = net.hosts["h0_0"].uplink

        def steal():
            assert uplink._queue and uplink._queue[-1].kind == "data"
            uplink._queue.pop()

        net.sim.call_at(0.2, steal)
        with pytest.raises(SanitizerError) as err:
            net.run(200.0)
        assert err.value.violation.rule == "conservation"
        assert "data" in err.value.violation.message

    def test_lost_rto_timer_chain_is_reported(self):
        net = Network(leafspine(2, 2, hosts_per_leaf=1, capacity=1.0),
                      ShortestPathSystem(), sanitize=True)
        # Detach the timeout chain: every scheduled check is now an impostor
        # the liveness scan (matching Host._check_timeout) cannot see.
        net.hosts["h0_0"]._check_timeout = lambda flow_id: None
        # Far too large to complete in the run: the sender stays incomplete.
        net.schedule_flows([Flow("h0_0", "h1_0", 500, 0.0)])
        with pytest.raises(SanitizerError) as err:
            net.run(5.0)
        assert err.value.violation.rule == "rto-liveness"


class TestProbeInvariants:
    def test_stale_epoch_probe_delivery_is_caught(self):
        system, net = build_contra_network(probe_vectorize=False)
        link = net.links[("spine0", "leaf0")]

        # A buggy delivery layer that ignores the fail epoch entirely: every
        # registered probe reaches deliver, dead epoch or not.  The sanitizer
        # seam (_sanitizer_probe_inner) substitutes it under the checks.
        def leaky(key, packets):
            for packet in packets:
                link.deliver(packet, link.src)

        link._sanitizer_probe_inner = leaky
        net.run(0.6)                      # fresh probes through leaky: clean
        assert net.sanitizer.ok

        payload = ProbePayload("leaf1", 0, 0, 1,
                               MetricVector(("util",), (0.0,)))
        probe = make_probe_packet(payload, "spine0", payload_bits=96)

        def inject():
            # Enqueue under the live epoch, then kill the link before the
            # batched delivery fires: the registered epoch is now dead.
            assert link.enqueue(probe)
            link.fail()

        net.sim.call_at(0.7, inject)
        with pytest.raises(SanitizerError) as err:
            net.sim.run(until=1.5)
        violation = err.value.violation
        assert violation.rule == "stale-probe"
        assert violation.tag is not None
        assert violation.tag[1] == "batch-lane"


class TestProtocolTableInvariants:
    def test_fwdt_version_decrease_and_dangling_bestt_key(self):
        system, net = build_contra_network()
        net.run(0.8)
        logic = system.logic("leaf0")
        key, entry = next(iter(logic.fwdt.items()))
        stale = dataclasses.replace(entry, version=entry.version - 1)
        with pytest.raises(SanitizerError) as err:
            logic.fwdt.install(key, stale)
        assert err.value.violation.rule == "fwdt-version"

        with pytest.raises(SanitizerError) as err:
            logic.bestt.set("leaf1", (("no-such-switch", 99, 99),))
        assert err.value.violation.rule == "bestt-coherence"

    @pytest.mark.skipif(not HAVE_NUMPY,
                        reason="ForwardingShadow needs numpy")
    def test_shadow_mirror_desync_is_caught_at_quiesce(self):
        system, net = build_contra_network(probe_vectorize=True)
        net.run(1.0)
        assert net.sanitizer.ok
        logic = system.logic("leaf0")
        shadow = logic._shadow
        populated = np.nonzero(shadow.versions >= 0)[0]
        assert len(populated) > 0
        # Push one mirrored version ahead of the symbolic table.
        shadow.versions[int(populated[0])] += 1000
        with pytest.raises(SanitizerError) as err:
            net.sanitizer.finish(net)
        assert err.value.violation.rule == "shadow-coherence"
