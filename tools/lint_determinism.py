#!/usr/bin/env python3
"""Determinism lint: scan ``src/repro`` for known nondeterminism hazards.

The simulator's contract (ROADMAP.md "byte-identity invariant") is that a
(scenario, seed) pair reproduces byte-identical summaries across runs and
machines.  The hazards this AST-based checker hunts are exactly the ways that
invariant has historically broken in Python codebases:

* ``hash-builtin`` — calls to the builtin ``hash()``: salted per process by
  PYTHONHASHSEED, so anything derived from it (bucket choice, iteration
  order) varies across runs.
* ``unseeded-random`` — module-level ``random.*`` calls (``random.random()``,
  ``random.choice(...)``, ...): they share one process-global RNG whose
  stream depends on import order; simulator code must thread an explicit
  ``random.Random(seed)``.
* ``wall-clock`` — ``time.time()`` / ``time.time_ns()`` /
  ``datetime.now()``-style calls: real time leaking into simulated time or
  summaries.  (``time.perf_counter`` is allowed: it only feeds *reported*
  wall-clock measurements such as compile times, never scheduling.)
* ``set-iteration`` — ``for`` loops directly over a set literal, set
  comprehension, or ``set(...)`` call without an ordering wrapper: iteration
  order depends on insertion history and hash salting.

Three scoped rules (PR 8) tighten the net where a hazard is only a hazard in
certain layers:

* ``sim-wall-clock`` — ``time.perf_counter``/``process_time`` (and ``_ns``
  variants) inside ``src/repro/simulator/``: the general wall-clock rule
  allows ``perf_counter`` for *reported* timings, but nothing under the
  simulator may read any host clock at all — the sanitizer plane asserts
  event-time monotonicity against the simulated clock only.
* ``id-ordering`` — ``id()`` calls inside ``src/repro/simulator/`` or
  ``src/repro/protocol/`` (outside ``__repr__``): CPython addresses vary per
  run, so ordering or keying on them is hidden nondeterminism.  Identity
  *comparison* (``is``) stays fine; materializing the address is the hazard.
* ``env-read`` — ``os.environ``/``os.getenv`` outside the two sanctioned
  entry points (``src/repro/cli.py``, ``src/repro/experiments/config.py``):
  environment reads scattered through library code make runs depend on
  ambient state in ways spec hashes cannot see.

Audited exceptions live in :data:`ALLOWLIST`, keyed by path relative to the
repository root; each entry names the rules it may violate and must carry a
justification comment.  Run from the repo root::

    python tools/lint_determinism.py [paths...]

Exit status is the number of unallowlisted findings (0 = clean).
"""

from __future__ import annotations

import ast
import sys
from pathlib import Path
from typing import Dict, FrozenSet, Iterator, List, NamedTuple, Tuple

REPO_ROOT = Path(__file__).resolve().parent.parent
DEFAULT_TARGET = REPO_ROOT / "src" / "repro"

#: Module-level functions of ``random`` that use the shared process RNG.
_GLOBAL_RANDOM_FUNCS = frozenset({
    "random", "randint", "randrange", "choice", "choices", "shuffle",
    "sample", "uniform", "gauss", "normalvariate", "expovariate",
    "betavariate", "triangular", "seed", "getrandbits",
})

#: Wall-clock reads that must not drive simulation or summaries.
_WALL_CLOCK = {
    ("time", "time"),
    ("time", "time_ns"),
    ("time", "monotonic"),
    ("time", "monotonic_ns"),
    ("datetime", "now"),
    ("datetime", "utcnow"),
    ("datetime", "today"),
    ("date", "today"),
}

#: Additional clocks banned *inside the simulator package* (sim-wall-clock):
#: perf_counter is fine for reported compile/benchmark timings elsewhere, but
#: simulator code must be a pure function of the event heap.
_SIM_WALL_CLOCK = {
    ("time", "perf_counter"),
    ("time", "perf_counter_ns"),
    ("time", "process_time"),
    ("time", "process_time_ns"),
}

#: Package prefixes where the scoped rules apply (POSIX-relative paths).
_SIM_PREFIX = "src/repro/simulator/"
_ID_PREFIXES = ("src/repro/simulator/", "src/repro/protocol/")

#: The only files allowed to read the process environment (env-read).
_ENV_ALLOWED_FILES = frozenset({
    "src/repro/cli.py",
    "src/repro/experiments/config.py",
})

#: path (relative to repo root, POSIX separators) -> rules audited as safe.
#: Every entry must carry a comment justifying the audit.  (Flow hashing
#: already goes through the deterministic ``stable_flow_hash`` in
#: protocol/tables.py, and ``hash()`` inside ``__hash__`` is exempted by the
#: checker itself.)
ALLOWLIST: Dict[str, FrozenSet[str]] = {
    # Lease heartbeats are cross-host liveness infrastructure: staleness of
    # a lease held by a worker on *another machine* can only be judged
    # against the shared wall clock (perf_counter is process-relative).
    # The timestamps live in lease/meta files only — they never feed
    # simulated time, results records' payloads, or summaries, so the
    # byte-identity invariant is untouched (test-enforced: coordinated
    # merge == unsharded serial run).
    "src/repro/experiments/coordinator.py": frozenset({"wall-clock"}),
}


class Finding(NamedTuple):
    path: Path
    line: int
    rule: str
    message: str

    def render(self, root: Path) -> str:
        try:
            rel = self.path.relative_to(root)
        except ValueError:
            rel = self.path
        return f"{rel}:{self.line}: [{self.rule}] {self.message}"


def _dotted(node: ast.AST) -> Tuple[str, ...]:
    """``a.b.c`` -> ("a", "b", "c"); empty when not a plain dotted name."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return tuple(reversed(parts))
    return ()


class _Checker(ast.NodeVisitor):
    def __init__(self, path: Path):
        self.path = path
        try:
            self.rel = path.resolve().relative_to(REPO_ROOT).as_posix()
        except ValueError:
            self.rel = path.as_posix()
        self.findings: List[Finding] = []
        self._func_stack: List[str] = []

    def _flag(self, node: ast.AST, rule: str, message: str) -> None:
        self.findings.append(Finding(self.path, node.lineno, rule, message))

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._func_stack.append(node.name)
        self.generic_visit(node)
        self._func_stack.pop()

    visit_AsyncFunctionDef = visit_FunctionDef  # type: ignore[assignment]

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if isinstance(func, ast.Name) and func.id == "hash":
            # hash() inside __hash__ is the idiom for container membership;
            # the salt only affects in-process placement, and leaking *order*
            # out of a container is the set-iteration rule's job.
            if "__hash__" not in self._func_stack:
                self._flag(node, "hash-builtin",
                           "builtin hash() is salted per process "
                           "(PYTHONHASHSEED); derive keys explicitly")
        if isinstance(func, ast.Name) and func.id == "id" \
                and self.rel.startswith(_ID_PREFIXES) \
                and "__repr__" not in self._func_stack:
            self._flag(node, "id-ordering",
                       "id() materializes a per-run CPython address; ordering "
                       "or keying on it is hidden nondeterminism (use `is` "
                       "for identity tests)")
        dotted = _dotted(func)
        if len(dotted) >= 2:
            head, tail = dotted[-2], dotted[-1]
            if head == "random" and tail in _GLOBAL_RANDOM_FUNCS:
                self._flag(node, "unseeded-random",
                           f"module-level random.{tail}() uses the shared "
                           "process RNG; thread a random.Random(seed)")
            if (head, tail) in _WALL_CLOCK:
                self._flag(node, "wall-clock",
                           f"{head}.{tail}() reads the wall clock; simulated "
                           "time and summaries must not depend on it")
            if (head, tail) in _SIM_WALL_CLOCK \
                    and self.rel.startswith(_SIM_PREFIX):
                self._flag(node, "sim-wall-clock",
                           f"{head}.{tail}() inside the simulator package: "
                           "sim code must be a pure function of the event "
                           "heap, never a host clock")
            if dotted[-2:] == ("os", "getenv") \
                    and self.rel not in _ENV_ALLOWED_FILES:
                self._flag(node, "env-read",
                           "os.getenv() outside the CLI/config entry points; "
                           "route ambient configuration through "
                           "repro.experiments.config")
        self.generic_visit(node)

    def visit_Attribute(self, node: ast.Attribute) -> None:
        if node.attr == "environ" and isinstance(node.value, ast.Name) \
                and node.value.id == "os" \
                and self.rel not in _ENV_ALLOWED_FILES:
            self._flag(node, "env-read",
                       "os.environ access outside the CLI/config entry "
                       "points; route ambient configuration through "
                       "repro.experiments.config")
        self.generic_visit(node)

    def _is_unordered_set(self, node: ast.AST) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Name) \
                and node.func.id in ("set", "frozenset"):
            return True
        if isinstance(node, ast.BinOp) and isinstance(
                node.op, (ast.BitOr, ast.BitAnd, ast.Sub)):
            # set algebra (a | b, a & b, a - b) over sets stays a set; only
            # flag when a side is syntactically a set, else too noisy.
            return (self._is_unordered_set(node.left)
                    or self._is_unordered_set(node.right))
        return False

    def visit_For(self, node: ast.For) -> None:
        if self._is_unordered_set(node.iter):
            self._flag(node, "set-iteration",
                       "iterating a set directly: order depends on hashing; "
                       "wrap in sorted(...)")
        self.generic_visit(node)


def iter_python_files(targets: List[Path]) -> Iterator[Path]:
    for target in targets:
        if target.is_file():
            yield target
        else:
            yield from sorted(target.rglob("*.py"))


def lint(targets: List[Path]) -> Tuple[List[Finding], List[Finding]]:
    """Returns (violations, allowlisted)."""
    violations: List[Finding] = []
    allowed: List[Finding] = []
    for path in iter_python_files(targets):
        tree = ast.parse(path.read_text(), filename=str(path))
        checker = _Checker(path)
        checker.visit(tree)
        try:
            rel = path.resolve().relative_to(REPO_ROOT).as_posix()
        except ValueError:
            rel = path.as_posix()
        permitted = ALLOWLIST.get(rel, frozenset())
        for finding in checker.findings:
            (allowed if finding.rule in permitted else violations).append(finding)
    return violations, allowed


def main(argv: List[str]) -> int:
    targets = [Path(p) for p in argv] if argv else [DEFAULT_TARGET]
    missing = [t for t in targets if not t.exists()]
    if missing:
        print(f"no such path(s): {', '.join(map(str, missing))}", file=sys.stderr)
        return 2
    violations, allowed = lint(targets)
    for finding in violations:
        print(finding.render(REPO_ROOT))
    if allowed:
        print(f"({len(allowed)} allowlisted finding(s) suppressed)")
    if violations:
        print(f"{len(violations)} determinism hazard(s) found")
    else:
        print("determinism lint: clean")
    return min(len(violations), 125)


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
